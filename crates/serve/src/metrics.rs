//! Per-model serving metrics: request counters, octave-bucket latency
//! and queue-wait histograms, and the micro-batch size distribution.
//!
//! Everything on the hot path is an atomic increment; aggregation into
//! the serializable [`ModelStats`] snapshot happens only when a `stats`
//! request asks for it. Latencies land in the shared `man-obs`
//! power-of-two-microsecond buckets, so the reported percentiles are
//! exact to within one octave — plenty for capacity planning, and free
//! of locks.
//!
//! The request-outcome counters (`accepted`/`completed`/`rejected`/
//! `timed_out`) are `SeqCst` and each request lands in *disjoint*
//! buckets: `accepted` is counted before the queue handoff and every
//! outcome is counted by the *submitter* before its call returns
//! (exactly one branch per accepted request). A racing snapshot that
//! reads the outcome counters first and `accepted` last can therefore
//! assert `accepted >= completed + rejected + timed_out` at any
//! instant — the consistency contract the `metrics_consistency` test
//! hammers — and a client that got its reply always sees it counted
//! in its very next `stats` call.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

pub use man_obs::OctaveHistogram as LatencyHistogram;

use man_par::ShardPlan;
use man_repro::SessionStats;
use serde::Serialize;

/// Live counters for one hosted model. Shared (`Arc`) between the
/// submit path, the scheduler workers, and the stats endpoint.
#[derive(Debug)]
pub struct ModelMetrics {
    /// Requests admitted past shape validation and offered to the
    /// queue — including ones the full queue then rejected. Incremented
    /// *before* the queue handoff, so at every instant
    /// `accepted >= completed + rejected + timed_out`.
    pub accepted: AtomicU64,
    /// Requests whose prediction came back to the submitter in time.
    pub completed: AtomicU64,
    /// Requests rejected at submit (queue full).
    pub rejected: AtomicU64,
    /// Requests whose submitter gave up at `request_timeout` (the
    /// scheduler still ran the batch; the late reply goes nowhere).
    pub timed_out: AtomicU64,
    /// Requests answered with an error: shape mismatches at submit,
    /// plus worker-side failures delivered back in time.
    pub errors: AtomicU64,
    /// `infer_batch` calls issued by the scheduler.
    pub batches: AtomicU64,
    /// One counter per batch size `1..=max_batch` (index `size - 1`).
    batch_sizes: Vec<AtomicU64>,
    /// End-to-end latency (enqueue to reply) of delivered replies.
    pub latency: LatencyHistogram,
    /// Time each request sat queued before a scheduler drained it —
    /// the backpressure-onset signal the end-to-end percentiles hide.
    pub queue_wait: LatencyHistogram,
    /// Requests currently queued (approximate).
    pub queue_depth: AtomicUsize,
    /// First-memory-walk latch: guarantees the very first dispatched
    /// batch of a freshly loaded model records the cache footprint,
    /// however many workers race it (see `dispatch`).
    pub(crate) memory_observed: AtomicBool,
    /// What the most recent dispatch resolved to (plan × kernel) plus
    /// the worker session's cache memory — plan/kernel are recorded per
    /// batch (two `Copy` stores), the memory walk only periodically;
    /// both read by `stats`.
    session: Mutex<SessionObservation>,
}

/// The session snapshot the scheduler records. Plan and kernel are
/// kept in their cheap `Copy` forms — labels are rendered at snapshot
/// time, not on the dispatch hot path.
#[derive(Clone, Debug, Default)]
struct SessionObservation {
    plan: Option<ShardPlan>,
    /// `""` until the first dispatch.
    kernel: &'static str,
    /// `""` until the first dispatch.
    layout: &'static str,
    layer_bank_bytes: Vec<u64>,
    bank_bytes: u64,
    plane_bytes: u64,
    kernel_plan_bytes: u64,
    transpose_bytes: u64,
}

impl ModelMetrics {
    /// Fresh counters for a scheduler with the given `max_batch`.
    pub fn new(max_batch: usize) -> Self {
        Self {
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_sizes: (0..max_batch.max(1)).map(|_| AtomicU64::new(0)).collect(),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            queue_depth: AtomicUsize::new(0),
            memory_observed: AtomicBool::new(false),
            session: Mutex::new(SessionObservation::default()),
        }
    }

    /// Records one dispatched batch of `size` requests.
    ///
    /// ORDERING: monotonic statistics counters read only for reporting;
    /// Relaxed suffices (no memory is published through them).
    pub fn observe_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if size >= 1 {
            let idx = (size - 1).min(self.batch_sizes.len() - 1);
            self.batch_sizes[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records what a dispatch resolved to on all three tuner axes —
    /// three `Copy` stores under a short lock, cheap enough for every
    /// batch, so operators always see what the tuner actually chose
    /// last.
    pub fn observe_plan(&self, plan: ShardPlan, kernel: &'static str, layout: &'static str) {
        let mut obs = self
            .session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        obs.plan = Some(plan);
        obs.kernel = kernel;
        obs.layout = layout;
    }

    /// Records a worker session's cache memory footprint. Walking the
    /// footprint locks every worker-slot cache and allocates, so the
    /// scheduler calls this on the first batch and then periodically,
    /// not per batch.
    pub fn observe_memory(&self, stats: &SessionStats) {
        let mut obs = self
            .session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        obs.layer_bank_bytes = stats.layer_bank_bytes.clone();
        obs.bank_bytes = stats.bank_bytes;
        obs.plane_bytes = stats.plane_bytes;
        obs.kernel_plan_bytes = stats.kernel_plan_bytes;
        obs.transpose_bytes = stats.transpose_bytes;
    }

    /// The most recent resolved plan × kernel × layout, rendered
    /// (`None` before the first dispatch) — what the Prometheus
    /// exporter labels `man_serve_model_info` with.
    pub fn resolved_labels(&self) -> Option<(String, &'static str, &'static str)> {
        let obs = self
            .session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        obs.plan.map(|p| {
            (
                p.label_with_kernel_layout(obs.kernel, obs.layout),
                obs.kernel,
                obs.layout,
            )
        })
    }

    /// Aggregates the counters into a serializable snapshot.
    ///
    /// The outcome counters are read in a deliberate order — the
    /// disjoint outcomes (`completed`, `errors`, `timed_out`,
    /// `rejected`) first, `accepted` *last*, all `SeqCst`: every
    /// outcome increment follows its own request's `accepted`
    /// increment in the total order, so the snapshot can never show
    /// more outcomes than admissions. The remaining counters are
    /// advisory Relaxed reads.
    ///
    /// ORDERING: the Relaxed loads here read independent monotonic
    /// statistics counters (histograms, batch sizes, queue depth); no
    /// cross-counter consistency is promised for them.
    pub fn snapshot(&self, model: &str) -> ModelStats {
        let obs = self
            .session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        let unresolved = || "unresolved".to_owned();
        let latency = self.latency.snapshot();
        let queue_wait = self.queue_wait.snapshot();
        let batch_histogram: Vec<u64> = self
            .batch_sizes
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let batches = self.batches.load(Ordering::Relaxed);
        let dispatched: u64 = batch_histogram
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        // Disjoint outcomes first, accepted last — see the doc above.
        let completed = self.completed.load(Ordering::SeqCst);
        let errors = self.errors.load(Ordering::SeqCst);
        let timed_out = self.timed_out.load(Ordering::SeqCst);
        let rejected = self.rejected.load(Ordering::SeqCst);
        let accepted = self.accepted.load(Ordering::SeqCst);
        ModelStats {
            model: model.to_owned(),
            accepted,
            completed,
            rejected,
            timed_out,
            errors,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                dispatched as f64 / batches as f64
            },
            batch_histogram,
            queue_depth: self.queue_depth.load(Ordering::Relaxed) as u64,
            mean_latency_us: latency.mean(),
            p50_us: latency.quantile(0.50),
            p95_us: latency.quantile(0.95),
            p99_us: latency.quantile(0.99),
            mean_queue_us: queue_wait.mean(),
            queue_p50_us: queue_wait.quantile(0.50),
            queue_p95_us: queue_wait.quantile(0.95),
            queue_p99_us: queue_wait.quantile(0.99),
            plan: obs
                .plan
                .map(|p| p.label_with_kernel_layout(obs.kernel, obs.layout))
                .unwrap_or_else(unresolved),
            kernel: if obs.kernel.is_empty() {
                unresolved()
            } else {
                obs.kernel.to_owned()
            },
            layout: if obs.layout.is_empty() {
                unresolved()
            } else {
                obs.layout.to_owned()
            },
            cache_layer_bank_bytes: obs.layer_bank_bytes,
            cache_bank_bytes: obs.bank_bytes,
            cache_plane_bytes: obs.plane_bytes,
            kernel_plan_bytes: obs.kernel_plan_bytes,
            cache_transpose_bytes: obs.transpose_bytes,
        }
    }
}

/// A point-in-time stats snapshot for one model — the payload of the
/// protocol's `stats` response and of `BENCH_serve.json`.
#[derive(Clone, Debug, Serialize)]
pub struct ModelStats {
    /// Model name.
    pub model: String,
    /// Requests admitted past shape validation and offered to the
    /// queue (includes later-rejected ones); at every instant
    /// `accepted >= completed + rejected + timed_out`.
    pub accepted: u64,
    /// Requests whose prediction came back in time.
    pub completed: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests whose submitter gave up at `request_timeout`.
    pub timed_out: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Scheduler `infer_batch` calls.
    pub batches: u64,
    /// Mean requests per batch.
    pub mean_batch: f64,
    /// Batches of size `i + 1` (the micro-batch size distribution).
    pub batch_histogram: Vec<u64>,
    /// Requests queued at snapshot time (approximate).
    pub queue_depth: u64,
    /// Mean end-to-end latency.
    pub mean_latency_us: f64,
    /// Median end-to-end latency (octave-bucket estimate).
    pub p50_us: u64,
    /// 95th-percentile latency (octave-bucket estimate).
    pub p95_us: u64,
    /// 99th-percentile latency (octave-bucket estimate).
    pub p99_us: u64,
    /// Mean time a request sat queued before a scheduler drained it.
    pub mean_queue_us: f64,
    /// Median queue wait (octave-bucket estimate).
    pub queue_p50_us: u64,
    /// 95th-percentile queue wait (octave-bucket estimate).
    pub queue_p95_us: u64,
    /// 99th-percentile queue wait (octave-bucket estimate) — rising
    /// queue percentiles with flat execution percentiles is the
    /// backpressure-onset signature.
    pub queue_p99_us: u64,
    /// The sharding plan × kernel × layout the most recent dispatch
    /// resolved to (e.g. `"rows(4)+swar+batch"`); `"unresolved"` before
    /// the first batch.
    pub plan: String,
    /// The resolved MAC kernel label (`"scalar"`/`"swar"`/`"avx2"`;
    /// `"unresolved"` before the first batch).
    pub kernel: String,
    /// The resolved layout label (`"row"`/`"batch"`; `"unresolved"`
    /// before the first batch).
    pub layout: String,
    /// Per-layer bank-arena bytes of the observed worker session.
    pub cache_layer_bank_bytes: Vec<u64>,
    /// Total bank-arena bytes of the observed worker session.
    pub cache_bank_bytes: u64,
    /// Product-plane bytes (0 outside `SessionMode::Warm`; the plane is
    /// shared across worker slots and counted once).
    pub cache_plane_bytes: u64,
    /// Bytes of the engine's shared SoA kernel plans.
    pub kernel_plan_bytes: u64,
    /// Batch-major transpose-scratch bytes of the observed worker
    /// session, summed across its slots (0 until a batch-major
    /// dispatch ran).
    pub cache_transpose_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn percentiles_track_bucket_order() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.observe(Duration::from_micros(100)); // bucket 6 ([64, 128))
        }
        for _ in 0..10 {
            h.observe(Duration::from_micros(10_000)); // bucket 13
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!(
            (64..128).contains(&p50),
            "p50 {p50} should sit in the 100us octave"
        );
        assert!(
            (8_192..16_384).contains(&p99),
            "p99 {p99} should sit in the 10ms octave"
        );
        assert!(p50 < p99);
    }

    #[test]
    fn batch_histogram_counts_sizes() {
        let m = ModelMetrics::new(4);
        m.observe_batch(1);
        m.observe_batch(4);
        m.observe_batch(4);
        m.observe_batch(9); // clamped into the last bucket
        let s = m.snapshot("m");
        assert_eq!(s.batch_histogram, vec![1, 0, 0, 3]);
        assert_eq!(s.batches, 4);
        assert!(s.mean_batch > 1.0);
    }

    #[test]
    fn empty_metrics_snapshot_is_zeroed() {
        let s = ModelMetrics::new(8).snapshot("idle");
        assert_eq!(s.completed, 0);
        assert_eq!(s.p99_us, 0);
        assert_eq!(s.queue_p99_us, 0);
        assert_eq!(s.mean_batch, 0.0);
    }

    #[test]
    fn queue_wait_is_separate_from_latency() {
        let m = ModelMetrics::new(8);
        m.queue_wait.observe(Duration::from_micros(100));
        m.latency.observe(Duration::from_micros(10_000));
        let s = m.snapshot("m");
        assert!((64..128).contains(&s.queue_p50_us), "{}", s.queue_p50_us);
        assert!((8_192..16_384).contains(&s.p50_us), "{}", s.p50_us);
    }
}
