//! The unified telemetry export plane (DESIGN.md §12): one Prometheus
//! text page covering the whole stack — per-model request counters and
//! raw latency/queue-wait histograms, the resolved plan × kernel info
//! series, `man-par` pool utilization, and the process-wide per-stage
//! span histograms `man-obs` collects.
//!
//! The page is served on demand through the `metrics` protocol verb
//! ([`prometheus_page`]) and, optionally, pushed on a schedule by the
//! [`MetricsExporter`] thread — a textfile-collector-style sink for
//! hosts without a scraper.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use man_obs::export::PromText;

use crate::registry::ModelRegistry;

/// Renders the full Prometheus text page (exposition format 0.0.4) for
/// a registry: model series first (name order), then pool utilization,
/// then the per-stage span histograms.
pub fn prometheus_page(registry: &ModelRegistry) -> String {
    let mut page = PromText::new();

    let handles = registry.metrics_handles();
    page.header(
        "man_serve_requests_total",
        "counter",
        "Requests by model and outcome (accepted admits past shape validation).",
    );
    for (name, m) in &handles {
        // The same read discipline as ModelMetrics::snapshot — disjoint
        // outcomes first, accepted last — keeps the page's counters
        // consistent with the invariant.
        let completed = m.completed.load(Ordering::SeqCst);
        let errors = m.errors.load(Ordering::SeqCst);
        let timed_out = m.timed_out.load(Ordering::SeqCst);
        let rejected = m.rejected.load(Ordering::SeqCst);
        let accepted = m.accepted.load(Ordering::SeqCst);
        for (outcome, value) in [
            ("accepted", accepted),
            ("completed", completed),
            ("rejected", rejected),
            ("timed_out", timed_out),
            ("error", errors),
        ] {
            page.sample_u64(
                "man_serve_requests_total",
                &[("model", name), ("outcome", outcome)],
                value,
            );
        }
    }

    page.header(
        "man_serve_batches_total",
        "counter",
        "Coalesced infer_batch calls issued by the scheduler.",
    );
    for (name, m) in &handles {
        // ORDERING: monotone statistics counter; reporting only.
        let batches = m.batches.load(Ordering::Relaxed);
        page.sample_u64("man_serve_batches_total", &[("model", name)], batches);
    }

    page.header(
        "man_serve_queue_depth",
        "gauge",
        "Requests currently queued (approximate).",
    );
    for (name, m) in &handles {
        // ORDERING: advisory gauge; reporting only.
        let depth = m.queue_depth.load(Ordering::Relaxed) as u64;
        page.sample_u64("man_serve_queue_depth", &[("model", name)], depth);
    }

    page.header(
        "man_serve_model_info",
        "gauge",
        "Resolved plan, kernel and layout labels of the most recent dispatch (value is always 1).",
    );
    for (name, m) in &handles {
        if let Some((plan, kernel, layout)) = m.resolved_labels() {
            page.sample_u64(
                "man_serve_model_info",
                &[
                    ("model", name),
                    ("plan", plan.as_str()),
                    ("kernel", kernel),
                    ("layout", layout),
                ],
                1,
            );
        }
    }

    page.header(
        "man_serve_request_latency_seconds",
        "histogram",
        "End-to-end request latency (enqueue to reply).",
    );
    for (name, m) in &handles {
        page.histogram_us(
            "man_serve_request_latency_seconds",
            &[("model", name)],
            &m.latency.snapshot(),
        );
    }

    page.header(
        "man_serve_queue_wait_seconds",
        "histogram",
        "Time requests sat queued before a scheduler drained them.",
    );
    for (name, m) in &handles {
        page.histogram_us(
            "man_serve_queue_wait_seconds",
            &[("model", name)],
            &m.queue_wait.snapshot(),
        );
    }

    let pool = man_par::pool_stats().snapshot();
    page.header(
        "man_pool_events_total",
        "counter",
        "Worker-pool activity: parks, chunk completions, submitter steal-backs, executed slots.",
    );
    for (kind, value) in [
        ("park", pool.parks),
        ("chunk", pool.chunks),
        ("steal", pool.steals),
        ("worker_slot", pool.worker_slots),
        ("inline_slot", pool.inline_slots),
    ] {
        page.sample_u64("man_pool_events_total", &[("kind", kind)], value);
    }
    page.header(
        "man_pool_time_seconds_total",
        "counter",
        "Cumulative pool worker time by state (busy executing slots vs parked idle).",
    );
    page.sample_f64(
        "man_pool_time_seconds_total",
        &[("state", "busy")],
        pool.busy_ns as f64 / 1e9,
    );
    page.sample_f64(
        "man_pool_time_seconds_total",
        &[("state", "parked")],
        pool.park_ns as f64 / 1e9,
    );

    page.header(
        "man_stage_seconds",
        "histogram",
        "Per-stage span latency across the serving lifecycle (accept through encode, plus pool stages).",
    );
    for (stage, snap) in man_obs::stage_snapshot() {
        if snap.is_empty() {
            continue;
        }
        page.histogram_us("man_stage_seconds", &[("stage", stage.label())], &snap);
    }

    page.header(
        "man_obs_level",
        "gauge",
        "Active observability level (value is always 1 on the active label).",
    );
    page.sample_u64("man_obs_level", &[("level", man_obs::level().label())], 1);

    page.finish()
}

/// A periodic export thread: renders [`prometheus_page`] every
/// `interval` and hands the text to `sink` (write it to a node-exporter
/// textfile, push it, log it — the exporter does not care). The sink
/// also runs once immediately at start, so a short-lived process still
/// exports at least one page.
pub struct MetricsExporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsExporter {
    /// Starts the export loop.
    pub fn start(
        registry: Arc<ModelRegistry>,
        interval: Duration,
        mut sink: impl FnMut(String) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("man-serve/exporter".into())
            .spawn(move || {
                // Tick in short slices so stop() is observed promptly
                // even with a long interval.
                let tick = interval
                    .min(Duration::from_millis(50))
                    .max(Duration::from_millis(1));
                loop {
                    sink(prometheus_page(&registry));
                    let mut waited = Duration::ZERO;
                    while waited < interval {
                        if thread_stop.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(tick);
                        waited += tick;
                    }
                    if thread_stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
            })
            .expect("spawning the metrics exporter thread");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops and joins the export thread. Idempotent; also run by drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::BatchConfig;
    use std::sync::Mutex;

    #[test]
    fn empty_registry_page_still_renders_pool_and_level() {
        let registry = ModelRegistry::new(BatchConfig::default());
        let page = prometheus_page(&registry);
        assert!(
            page.contains("# TYPE man_pool_events_total counter"),
            "{page}"
        );
        assert!(
            page.contains("man_pool_time_seconds_total{state=\"busy\"}"),
            "{page}"
        );
        assert!(page.contains("# TYPE man_obs_level gauge"), "{page}");
    }

    #[test]
    fn periodic_exporter_delivers_pages_and_stops() {
        let registry = ModelRegistry::new(BatchConfig::default());
        let pages: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_pages = Arc::clone(&pages);
        let mut exporter =
            MetricsExporter::start(registry, Duration::from_millis(5), move |page| {
                sink_pages.lock().expect("sink lock").push(page)
            });
        // The first page is exported immediately; wait for at least one
        // more tick, then stop.
        std::thread::sleep(Duration::from_millis(30));
        exporter.stop();
        let exported = pages.lock().expect("sink lock");
        assert!(
            exported.len() >= 2,
            "expected >=2 pages, got {}",
            exported.len()
        );
        assert!(exported[0].contains("man_obs_level"));
    }
}
