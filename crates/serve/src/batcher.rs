//! The dynamic micro-batching scheduler: one bounded queue and a pool of
//! worker threads per hosted model.
//!
//! Callers submit single requests; workers coalesce whatever is queued —
//! up to [`BatchConfig::max_batch`] requests, waiting at most
//! [`BatchConfig::max_wait`] after the first — into one
//! `infer_batch_shared` call, so concurrent callers share pre-computer
//! banks (and, in [`SessionMode::Warm`], memoized products) exactly the
//! way a batch does. Replies travel back over per-request oneshot
//! channels. When the queue is full, submission fails *immediately* with
//! [`man_repro::ServeError::Overloaded`] — explicit backpressure beats
//! unbounded latency.
//!
//! The whole lifecycle is traced through `man-obs` (DESIGN.md §12):
//! submit records an `accept` span and tags the job with a request id,
//! the drain loop records `queue_wait` (per request) and `coalesce`
//! (per batch), dispatch records `dispatch` (with the resolved plan
//! label) and `kernel` (with the resolved kernel label) — and the
//! incident paths (`Overloaded`, request timeout, contained panic)
//! anchor a flight-recorder dump to the failing request.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use man_obs::{flight, Span, Stage};
use man_par::{AutoTuning, Kernel, Layout, ShardPlan};
use man_repro::{CompiledModel, InferenceSession, ManError, Parallelism, Prediction, ServeError};

use crate::metrics::ModelMetrics;

/// How a scheduler worker holds inference state between requests.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SessionMode {
    /// A fresh [`InferenceSession`] per dispatch call — the stateless
    /// baseline a naive server would implement; nothing is shared
    /// between calls. Exists for benchmarking and comparison.
    Cold,
    /// One persistent session per worker, sharing pre-computer banks
    /// across every request the worker ever serves.
    Persistent,
    /// [`SessionMode::Persistent`] plus the product-plane memo
    /// ([`InferenceSession::warm`]) — the production default.
    Warm,
}

/// Scheduler tuning for one hosted model.
///
/// # Example
///
/// Struct-update over [`BatchConfig::default`] is the intended idiom —
/// override what matters, keep the production defaults for the rest:
///
/// ```
/// use std::time::Duration;
/// use man_serve::{BatchConfig, SessionMode};
///
/// let config = BatchConfig {
///     max_batch: 8,
///     max_wait: Duration::from_micros(200),
///     ..BatchConfig::default()
/// };
/// assert_eq!(config.workers, 1);
/// assert_eq!(config.session_mode, SessionMode::Warm);
/// assert_eq!(config.request_timeout, Duration::from_secs(30));
/// assert_eq!(config.layout, man_repro::man_par::Layout::Auto);
/// ```
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Most requests coalesced into one `infer_batch` call.
    pub max_batch: usize,
    /// Longest a worker waits for more requests after the first one of a
    /// batch arrives. Zero — the default — means "drain whatever is
    /// already queued and go": batches then form naturally while the
    /// previous batch computes (continuous batching), which wastes no
    /// worker time. A positive wait trades first-request latency for
    /// fuller batches under sparse open-loop traffic.
    pub max_wait: Duration,
    /// Bounded queue size; a full queue rejects with `Overloaded`.
    pub queue_capacity: usize,
    /// Worker threads (each with its own session in the persistent
    /// modes).
    pub workers: usize,
    /// Session reuse policy.
    pub session_mode: SessionMode,
    /// Intra-batch parallelism: each scheduler worker's session shards
    /// one coalesced micro-batch across this many cores (row-sharded;
    /// bit-identical to sequential). [`Parallelism::Sequential`] — the
    /// default — keeps one core per micro-batch, which is right when
    /// `workers` already covers the machine; raise it instead of
    /// `workers` when per-request latency matters more than stream
    /// throughput. [`Parallelism::Auto`] hands the choice to the
    /// `man-par` tuner, which folds in the model's MACs per row, the
    /// coalesced batch size *and* the live queue depth — a deep backlog
    /// means sibling batches are right behind this one, so it should not
    /// grab every core.
    pub parallelism: Parallelism,
    /// Threshold overrides for the [`Parallelism::Auto`] decision table
    /// (ignored under `Sequential`/`Threads`).
    pub auto_tuning: AutoTuning,
    /// The MAC-kernel axis for every worker session: scalar reference,
    /// portable SWAR, the host's best vectorized kernel, or `Auto`
    /// (engine default, `MAN_KERNEL`-overridable). Bit-identical either
    /// way; the resolved label lands in the model's `stats`.
    pub kernel: Kernel,
    /// The layout axis for every worker session: row-major (per-image
    /// kernels), batch-major (batch-transposed lane kernels), or `Auto`
    /// (engine default, `MAN_LAYOUT`-overridable — the tuner flips to
    /// batch-major when the coalesced batch is wide and rows are
    /// expensive). Bit-identical either way; the per-dispatch resolved
    /// label lands in the model's `stats`.
    pub layout: Layout,
    /// How long a submitter waits for its reply before giving up.
    pub request_timeout: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_wait: Duration::ZERO,
            queue_capacity: 256,
            workers: 1,
            session_mode: SessionMode::Warm,
            parallelism: Parallelism::Sequential,
            auto_tuning: AutoTuning::default(),
            kernel: Kernel::Auto,
            layout: Layout::Auto,
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// One queued request: the input plus the oneshot reply slot.
struct Job {
    input: Vec<f32>,
    reply: SyncSender<Result<Prediction, ManError>>,
    enqueued: Instant,
    /// Tracing request id (`man_obs::next_request_id`; 0 when the
    /// observability plane is off).
    req: u64,
    /// Enqueue timestamp on the obs monotonic clock (0 when off).
    enqueued_ns: u64,
}

/// A model plus its scheduler: queue, worker pool, metrics.
///
/// Dropping (or [`ModelHost::stop`]-ping) the host closes the queue;
/// workers then drain every already-queued request before exiting, so
/// shutdown never silently drops accepted work.
pub struct ModelHost {
    name: String,
    model: Arc<CompiledModel>,
    config: BatchConfig,
    input_len: usize,
    metrics: Arc<ModelMetrics>,
    /// `None` once stopped; taking it drops the sender and closes the
    /// queue.
    queue: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ModelHost {
    /// Starts a scheduler for `model`.
    pub fn start(name: impl Into<String>, model: CompiledModel, config: BatchConfig) -> Arc<Self> {
        let name = name.into();
        let model = Arc::new(model);
        let metrics = Arc::new(ModelMetrics::new(config.max_batch));
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::new();
        for w in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let model = Arc::clone(&model);
            let metrics = Arc::clone(&metrics);
            let cfg = config.clone();
            let thread_name = format!("man-serve/{name}/{w}");
            handles.push(
                std::thread::Builder::new()
                    .name(thread_name)
                    .spawn(move || worker_loop(&rx, &model, &cfg, &metrics))
                    .expect("spawning a scheduler worker thread"),
            );
        }
        Arc::new(Self {
            name,
            input_len: model.fixed().input_len(),
            model,
            config,
            metrics,
            queue: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
        })
    }

    /// The model name this host serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hosted model.
    pub fn model(&self) -> &CompiledModel {
        &self.model
    }

    /// The scheduler configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Live metrics handle.
    pub fn metrics(&self) -> &Arc<ModelMetrics> {
        &self.metrics
    }

    /// Submits one request and blocks until its reply (or timeout).
    ///
    /// # Errors
    ///
    /// [`ManError::Shape`] for a wrong-length input (checked before
    /// queueing), [`ServeError::Overloaded`] when the queue is full,
    /// [`ServeError::Unavailable`] when the host is stopping, and
    /// [`ServeError::Timeout`] when no reply arrives in
    /// [`BatchConfig::request_timeout`].
    ///
    /// `accepted` is counted (SeqCst) *before* the queue handoff and
    /// never rolled back, so it means "admitted past shape validation"
    /// and dominates the disjoint outcome counters at every instant —
    /// see [`ModelMetrics`]. `queue_depth` stays a Relaxed advisory
    /// gauge: it is pre-incremented before `try_send` (and decremented
    /// on rejection) so it never under-reports the backlog the workers
    /// are about to see.
    pub fn submit(&self, input: Vec<f32>) -> Result<Prediction, ManError> {
        if input.len() != self.input_len {
            // ORDERING: monotonic statistics counter; reporting only.
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ManError::Shape {
                expected: self.input_len,
                got: input.len(),
            });
        }
        let obs_on = man_obs::counters_enabled();
        let req = if obs_on {
            man_obs::next_request_id()
        } else {
            0
        };
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let enqueued = Instant::now();
        let job = Job {
            input,
            reply: reply_tx,
            enqueued,
            req,
            enqueued_ns: if obs_on { man_obs::now_ns() } else { 0 },
        };
        {
            let accept_span = Span::enter_for(Stage::Accept, req);
            let queue = self.queue.lock().expect("queue lock poisoned");
            let Some(tx) = queue.as_ref() else {
                return Err(ServeError::Unavailable(self.name.clone()).into());
            };
            // Count the admission before handing the job over: a worker
            // may dequeue the instant try_send returns.
            // ORDERING: advisory depth gauge; never synchronizes data.
            self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
            self.metrics.accepted.fetch_add(1, Ordering::SeqCst);
            match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    // ORDERING: advisory depth gauge; never synchronizes data.
                    self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    self.metrics.rejected.fetch_add(1, Ordering::SeqCst);
                    drop(accept_span);
                    // Anchor a flight-recorder dump to the rejected
                    // request: flush this thread's span buffer first so
                    // the dump sees the freshest events.
                    man_obs::incident(Stage::Overloaded, req);
                    man_obs::flush();
                    flight::trigger_dump("overloaded", req);
                    return Err(ServeError::Overloaded {
                        model: self.name.clone(),
                        capacity: self.config.queue_capacity,
                    }
                    .into());
                }
                Err(TrySendError::Disconnected(_)) => {
                    // ORDERING: advisory depth gauge; never synchronizes data.
                    self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    return Err(ServeError::Unavailable(self.name.clone()).into());
                }
            }
        }
        // Outcome accounting happens here, on the submitter, *before*
        // the call returns: exactly one of `completed`/`errors`/
        // `timed_out` per accepted request, so a client that got its
        // reply is guaranteed to see it in the very next `stats` call,
        // and the disjoint-outcome invariant holds at every instant.
        match reply_rx.recv_timeout(self.config.request_timeout) {
            Ok(result) => {
                self.metrics.latency.observe(enqueued.elapsed());
                match &result {
                    Ok(_) => self.metrics.completed.fetch_add(1, Ordering::SeqCst),
                    Err(_) => self.metrics.errors.fetch_add(1, Ordering::SeqCst),
                };
                result
            }
            Err(RecvTimeoutError::Timeout) => {
                self.metrics.timed_out.fetch_add(1, Ordering::SeqCst);
                man_obs::incident(Stage::Timeout, req);
                man_obs::flush();
                flight::trigger_dump("timeout", req);
                Err(ServeError::Timeout(self.name.clone()).into())
            }
            // The host is stopping and this job's reply slot was dropped
            // unanswered; `accepted` dominates the outcome counters, so
            // leaving it outcome-less keeps the invariant sound.
            Err(RecvTimeoutError::Disconnected) => {
                Err(ServeError::Unavailable(self.name.clone()).into())
            }
        }
    }

    /// Graceful shutdown: closes the queue, lets the workers drain every
    /// already-accepted request, and joins them. Idempotent.
    pub fn stop(&self) {
        drop(self.queue.lock().expect("queue lock poisoned").take());
        let handles: Vec<_> = {
            let mut workers = self.workers.lock().expect("workers lock poisoned");
            workers.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ModelHost {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Builds the session a persistent-mode worker keeps for its lifetime.
fn worker_session(model: &CompiledModel, cfg: &BatchConfig) -> Option<InferenceSession> {
    let tuned = |s: InferenceSession| {
        s.with_parallelism(cfg.parallelism)
            .with_auto_tuning(cfg.auto_tuning.clone())
            .with_kernel(cfg.kernel)
            .with_layout(cfg.layout)
    };
    match cfg.session_mode {
        SessionMode::Cold => None,
        SessionMode::Persistent => Some(tuned(model.session())),
        SessionMode::Warm => Some(tuned(model.session().warm())),
    }
}

/// Concurrent batch streams the scheduler expects around one dispatch:
/// this worker plus however many sibling workers the backlog can feed —
/// the [`Parallelism::Auto`] tuner's `streams` input, so a deep queue
/// stops one micro-batch from grabbing every core.
fn concurrent_streams(cfg: &BatchConfig, queued: usize) -> usize {
    let feedable = queued.div_ceil(cfg.max_batch.max(1));
    1 + feedable.min(cfg.workers.max(1) - 1)
}

/// ORDERING: `queue_depth` is an advisory backlog gauge — the
/// `fetch_sub` after draining and the `load` feeding the parallelism
/// tuner are `Relaxed` because the channel recv that delivered the jobs
/// already ordered them; a stale backlog sample only skews the
/// batch-size heuristic, never correctness.
fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    model: &CompiledModel,
    cfg: &BatchConfig,
    metrics: &ModelMetrics,
) {
    let session = worker_session(model, cfg);
    loop {
        // Hold the receiver lock across the blocking wait *and* the batch
        // drain: idle co-workers queue behind it and take over the moment
        // this worker moves on to inference.
        let mut batch = Vec::new();
        let mut coalesce_start = 0u64;
        {
            let rx = rx.lock().expect("receiver lock poisoned");
            match rx.recv() {
                Ok(job) => {
                    // Coalescing starts when the batch's first request
                    // is in hand — the blocking wait above was idle
                    // time, not batching time.
                    if man_obs::counters_enabled() {
                        coalesce_start = man_obs::now_ns().max(1);
                    }
                    batch.push(job);
                }
                Err(_) => return, // queue closed and fully drained
            }
            let deadline = (!cfg.max_wait.is_zero()).then(|| Instant::now() + cfg.max_wait);
            while batch.len() < cfg.max_batch {
                let wait = deadline.map(|d| d.saturating_duration_since(Instant::now()));
                match wait {
                    // Drain-only (or deadline passed): take what is
                    // already queued, never idle.
                    None | Some(Duration::ZERO) => match rx.try_recv() {
                        Ok(job) => batch.push(job),
                        Err(_) => break,
                    },
                    Some(wait) => match rx.recv_timeout(wait) {
                        Ok(job) => batch.push(job),
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => break,
                    },
                }
            }
        }
        metrics
            .queue_depth
            .fetch_sub(batch.len(), Ordering::Relaxed);
        metrics.observe_batch(batch.len());
        observe_drain(&batch, coalesce_start, metrics);
        // Sample the backlog *after* draining this batch: what is left
        // is what sibling workers will be batching while we infer.
        let backlog = metrics.queue_depth.load(Ordering::Relaxed);
        dispatch(batch, session.as_ref(), model, cfg, backlog, metrics);
        // Lifecycle flush point: the batch's span events reach the
        // flight-recorder ring before the next blocking wait, so a dump
        // triggered by anyone sees complete request lifecycles.
        man_obs::flush();
    }
}

/// Records queue-wait (per request) and coalesce (per batch) for one
/// drained batch. Queue wait always feeds the model's `stats`
/// histogram; the obs plane additionally gets per-request span events
/// when enabled.
fn observe_drain(batch: &[Job], coalesce_start: u64, metrics: &ModelMetrics) {
    let drained = Instant::now();
    for job in batch {
        metrics
            .queue_wait
            .observe(drained.saturating_duration_since(job.enqueued));
    }
    if coalesce_start == 0 {
        return; // obs plane off at drain start
    }
    let now = man_obs::now_ns();
    let coalesce_ns = now.saturating_sub(coalesce_start);
    for (i, job) in batch.iter().enumerate() {
        if job.enqueued_ns > 0 {
            man_obs::record(
                Stage::QueueWait,
                job.req,
                job.enqueued_ns,
                now.saturating_sub(job.enqueued_ns),
                "",
                0,
            );
        }
        if i == 0 {
            // Histogram truth once per batch; arg = batch size.
            man_obs::record(
                Stage::Coalesce,
                job.req,
                coalesce_start,
                coalesce_ns,
                "",
                batch.len() as u64,
            );
        } else {
            // Sibling requests share the batch's coalesce window.
            man_obs::record_event(
                Stage::Coalesce,
                job.req,
                coalesce_start,
                coalesce_ns,
                "",
                batch.len() as u64,
            );
        }
    }
}

/// Runs one coalesced batch and distributes the replies. Per-request
/// outcome counters live with the submitter (see [`ModelHost::submit`]);
/// reply delivery itself synchronizes through each job's reply channel.
fn dispatch(
    batch: Vec<Job>,
    session: Option<&InferenceSession>,
    model: &CompiledModel,
    cfg: &BatchConfig,
    backlog: usize,
    metrics: &ModelMetrics,
) {
    let (inputs, replies): (Vec<Vec<f32>>, Vec<_>) = batch
        .into_iter()
        .map(|j| (j.input, (j.reply, j.req)))
        .unzip();
    let streams = concurrent_streams(cfg, backlog);
    let dispatch_start = if man_obs::counters_enabled() {
        man_obs::now_ns().max(1)
    } else {
        0
    };
    // What the dispatch resolved to, captured for span labels (the
    // closure also records it into the model metrics).
    let mut resolved: Option<(ShardPlan, &'static str)> = None;
    // The kernel-execution window inside the dispatch, on the obs
    // clock (start, duration); left (0, 0) when the plane is off.
    let mut kernel_window = (0u64, 0u64);
    // A panicking inference must not kill the worker thread: with the
    // default single worker, a dead worker would silently turn the host
    // into a black hole (requests accepted, never answered). Contain the
    // panic, answer the batch with a typed error, keep serving.
    let outcome = {
        let resolved = &mut resolved;
        let kernel_window = &mut kernel_window;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match session {
            Some(session) => {
                let kernel_start = if dispatch_start > 0 {
                    man_obs::now_ns().max(1)
                } else {
                    0
                };
                let result = session.infer_batch_with_load(&inputs, streams);
                if kernel_start > 0 {
                    *kernel_window = (kernel_start, man_obs::now_ns().saturating_sub(kernel_start));
                }
                // What this batch actually resolved to (plan × kernel) —
                // two Copy stores, cheap enough for every dispatch. The
                // full cache-footprint walk locks every worker-slot cache
                // and allocates, so it runs on the first batch (latch
                // below) and then only periodically; the snapshot drifts
                // by at most 64 batches.
                if let Some((plan, layout)) = session.last_dispatch() {
                    metrics.observe_plan(plan, session.kernel_label(), layout.label());
                    *resolved = Some((plan, session.kernel_label()));
                }
                // ORDERING: the swap is a first-observation latch — any
                // one racing worker wins it and walks the footprint, so
                // batch 1 is never missed (the old `batches == 1` read
                // raced sibling workers); later walks are periodic.
                let first = !metrics.memory_observed.swap(true, Ordering::Relaxed);
                // ORDERING: monotonic statistics counter, reporting only.
                let batches = metrics.batches.load(Ordering::Relaxed);
                if first || batches.is_multiple_of(64) {
                    metrics.observe_memory(&session.stats());
                }
                result
            }
            // Cold mode: a throwaway session per dispatch call, sharing
            // nothing beyond this call (deliberately sequential, too — it is
            // the naive-server baseline); building the session dwarfs the
            // stats walk, so both observations run every time.
            None => {
                let cold = model
                    .session()
                    .with_kernel(cfg.kernel)
                    .with_layout(cfg.layout);
                let kernel_start = if dispatch_start > 0 {
                    man_obs::now_ns().max(1)
                } else {
                    0
                };
                let result = cold.infer_batch_shared(&inputs);
                if kernel_start > 0 {
                    *kernel_window = (kernel_start, man_obs::now_ns().saturating_sub(kernel_start));
                }
                if let Some((plan, layout)) = cold.last_dispatch() {
                    metrics.observe_plan(plan, cold.kernel_label(), layout.label());
                    *resolved = Some((plan, cold.kernel_label()));
                }
                metrics.observe_memory(&cold.stats());
                result
            }
        }))
    }
    .unwrap_or_else(|panic| {
        let what = panic
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| panic.downcast_ref::<&str>().copied())
            .unwrap_or("opaque panic payload");
        // Anchor a post-mortem to the batch's first request.
        let first_req = replies.first().map(|(_, req)| *req).unwrap_or(0);
        man_obs::incident(Stage::Panic, first_req);
        man_obs::flush();
        flight::trigger_dump("panic", first_req);
        Err(ServeError::Internal(format!("inference panicked: {what}")).into())
    });
    if dispatch_start > 0 {
        let dispatch_ns = man_obs::now_ns().saturating_sub(dispatch_start);
        let (plan_label, plan_workers, kernel_label) = match resolved {
            Some((plan, kernel)) => (plan.stage_label(), plan.workers() as u64, kernel),
            None => ("", 0, ""),
        };
        let (kernel_start, kernel_ns) = kernel_window;
        for (i, (_, req)) in replies.iter().enumerate() {
            if i == 0 {
                // Histogram truth once per batch (the per-request rows
                // are annotations of the same shared window).
                man_obs::record(
                    Stage::Dispatch,
                    *req,
                    dispatch_start,
                    dispatch_ns,
                    plan_label,
                    plan_workers,
                );
            } else {
                man_obs::record_event(
                    Stage::Dispatch,
                    *req,
                    dispatch_start,
                    dispatch_ns,
                    plan_label,
                    plan_workers,
                );
            }
            if kernel_start > 0 {
                // The per-batch kernel histogram is recorded by the
                // session itself (core stage hook); these per-request
                // events only annotate the shared window.
                man_obs::record_event(
                    Stage::Kernel,
                    *req,
                    kernel_start,
                    kernel_ns,
                    kernel_label,
                    replies.len() as u64,
                );
            }
        }
    }
    // Delivery only: the submitter does all per-request outcome
    // accounting (completed/errors/timed_out and the latency
    // histogram) when it picks the reply up, so a client never races
    // its own request's counters. A submitter that timed out dropped
    // its receiver; the failed send needs no bookkeeping here — the
    // submitter already counted `timed_out`.
    match outcome {
        Ok(predictions) => {
            for ((reply, _req), prediction) in replies.into_iter().zip(predictions) {
                let _ = reply.send(Ok(prediction));
            }
        }
        Err(e) => {
            // Shapes are validated at submit time, so this is a genuine
            // worker-side failure; stringify it once per job.
            let msg = e.to_string();
            for (reply, _req) in replies {
                let _ = reply.send(Err(ServeError::Internal(msg.clone()).into()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = BatchConfig::default();
        assert!(cfg.max_batch >= 8);
        assert!(cfg.queue_capacity >= cfg.max_batch);
        assert_eq!(cfg.session_mode, SessionMode::Warm);
        assert_eq!(cfg.auto_tuning, AutoTuning::default());
    }

    #[test]
    fn stream_estimate_tracks_backlog_and_sibling_workers() {
        let cfg = BatchConfig {
            max_batch: 8,
            workers: 4,
            ..BatchConfig::default()
        };
        // Empty backlog: this worker is the only stream.
        assert_eq!(concurrent_streams(&cfg, 0), 1);
        // A partial batch queued still feeds one sibling.
        assert_eq!(concurrent_streams(&cfg, 3), 2);
        // Two full batches feed two siblings.
        assert_eq!(concurrent_streams(&cfg, 16), 3);
        // The estimate never exceeds the scheduler's worker count.
        assert_eq!(concurrent_streams(&cfg, 10_000), 4);
        // A single-worker host is always exactly one stream.
        let solo = BatchConfig {
            workers: 1,
            ..BatchConfig::default()
        };
        assert_eq!(concurrent_streams(&solo, 10_000), 1);
    }
}
