//! The nonblocking poll reactor front-end (DESIGN.md §13).
//!
//! The legacy front-end spends one OS thread per connection; ten
//! thousand mostly-idle clients would cost ten thousand stacks doing
//! nothing but blocking in `read`. The reactor inverts that: a handful
//! of threads own *all* the sockets and wait on readiness — `poll(2)`
//! through the one audited shim in [`poll`] — so an idle connection
//! costs one slab slot and eight bytes in the poll set, and the
//! scheduler/registry/metrics stack underneath is reused **unchanged**
//! (the reactor owns socket I/O and framing, nothing else).
//!
//! Three moving parts:
//!
//! * **Reactor threads** (usually one) — each owns a slab of
//!   per-connection state machines and loops poll → accept → read →
//!   parse → hand off → write. Reactor 0 owns the listener and deals
//!   new connections round-robin. Each connection walks
//!   reading → dispatched → writing with explicit partial-read and
//!   partial-write buffers, and *writable backpressure*: a connection
//!   whose outbound buffer passes the high-water mark stops being
//!   polled for readability until the client drains it.
//! * **Dispatch workers** — a small pool that takes parsed requests off
//!   a bounded queue, runs them against the blocking
//!   [`ModelRegistry`](crate::ModelRegistry)/scheduler stack (where the `decode`/`accept`/
//!   `queue_wait`/… span taxonomy of DESIGN.md §12 is recorded exactly
//!   as before), and posts the rendered response back to the owning
//!   reactor's completion queue. A full dispatch queue answers
//!   `overloaded` immediately — backpressure, not unbounded latency.
//! * **Wakers** — one loopback socket pair per reactor; a one-byte
//!   write makes `poll` return so completions and injected connections
//!   are picked up promptly even on an otherwise idle reactor.
//!
//! Both wire modes of `PROTOCOL.md` are served on one port: the first
//! byte of a connection selects NDJSON (anything but `b'M'`) or the
//! length-prefixed binary framing (`"MANB"` handshake, [`crate::framing`]).
//!
//! Shutdown preserves the drain-then-join contract: reactors stop
//! accepting and reading, wait (bounded by
//! [`ReactorConfig::shutdown_grace`]) for in-flight dispatches to come
//! back and outbound buffers to flush, then close every socket; the
//! dispatch workers drain the queue and exit when the last reactor
//! drops its sender.

pub mod poll;

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use man_obs::{Span, Stage};

use crate::framing::{self, FrameStatus, HANDSHAKE_LEN, TAG_REQ_JSON, TAG_REQ_PREDICT};
use crate::protocol::{error_response, raw_error_response};
use crate::server::RequestHandler;

/// Tuning for the reactor front-end. The defaults serve tens of
/// thousands of mostly-idle connections on three threads (one reactor,
/// two dispatch workers).
#[derive(Clone, Debug)]
pub struct ReactorConfig {
    /// Event-loop threads. Connections are dealt round-robin across
    /// them at accept time; one is enough for 10k+ mostly-idle
    /// connections (the `conn` bench pins this).
    pub reactor_threads: usize,
    /// Workers calling the blocking scheduler on parsed requests. This
    /// bounds front-end request concurrency the way
    /// `BatchConfig::workers` bounds scheduler concurrency.
    pub dispatch_threads: usize,
    /// Connection-slab capacity across all reactors; connections beyond
    /// it are accepted and immediately closed (counted in
    /// [`FrontendStats::rejected_conns`]).
    pub max_connections: usize,
    /// Pending parsed requests awaiting a dispatch worker; a full queue
    /// answers `overloaded` without blocking the event loop.
    pub dispatch_queue: usize,
    /// Stop polling a connection for readability while its outbound
    /// buffer holds at least this many unflushed bytes — the writable
    /// backpressure that protects the server from clients that send
    /// but never read.
    pub write_high_water: usize,
    /// Stop polling for readability while this many inbound bytes sit
    /// unparsed (a pipelining client that outruns dispatch buffers at
    /// most this much per connection).
    pub read_high_water: usize,
    /// Longest NDJSON request line; a longer one without a newline is a
    /// protocol violation (`bad_request`) and closes the connection.
    /// (Binary frames are capped by [`framing::MAX_FRAME_LEN`].)
    pub max_line_len: usize,
    /// Poll timeout: the upper bound on how stale a shutdown flag or
    /// cross-thread wake can go unnoticed.
    pub poll_tick: Duration,
    /// How long a connection stays in the *hot* poll set after its last
    /// event. `poll(2)` costs one kernel visit per entry per call, so
    /// the reactor polls only hot connections on the fast path and
    /// sweeps the full slab on [`ReactorConfig::cold_scan_interval`] —
    /// that keeps active-request latency independent of how many idle
    /// connections the slab holds (the two-tier scheme of DESIGN.md
    /// §13).
    pub hot_window: Duration,
    /// How often the full slab (cold connections included) joins the
    /// poll set. Bounds how long a long-idle connection's new request
    /// (or hangup) can sit unnoticed; the cost is one full O(slab)
    /// scan per interval, only while hot traffic exists — a fully idle
    /// reactor blocks on the full set and pays nothing.
    pub cold_scan_interval: Duration,
    /// How long shutdown waits for in-flight requests to answer and
    /// outbound buffers to drain before closing sockets anyway.
    pub shutdown_grace: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            reactor_threads: 1,
            dispatch_threads: 2,
            max_connections: 65_536,
            dispatch_queue: 1024,
            write_high_water: 256 * 1024,
            read_high_water: 1024 * 1024,
            max_line_len: framing::MAX_FRAME_LEN as usize,
            poll_tick: Duration::from_millis(50),
            hot_window: Duration::from_millis(100),
            cold_scan_interval: Duration::from_millis(10),
            shutdown_grace: Duration::from_secs(5),
        }
    }
}

/// A point-in-time view of the front-end, whatever the mode — what the
/// serving example and CI smoke print, and what the `conn` bench
/// records next to its latency numbers.
#[derive(Clone, Debug)]
pub struct FrontendStats {
    /// `"reactor"` or `"legacy"`.
    pub mode: &'static str,
    /// Event-loop threads (0 in legacy mode).
    pub reactor_threads: usize,
    /// Dispatch workers (0 in legacy mode).
    pub dispatch_threads: usize,
    /// Connections accepted over the server's lifetime.
    pub accepted_conns: u64,
    /// Connections currently open.
    pub open_conns: usize,
    /// Most connections ever simultaneously open — the slab high-water
    /// mark (thread high-water in legacy mode).
    pub slab_high_water: usize,
    /// Connections dropped because the slab was at capacity.
    pub rejected_conns: u64,
    /// Connections that resolved to the NDJSON wire mode.
    pub ndjson_conns: u64,
    /// Connections that completed the binary-framing handshake.
    pub binary_conns: u64,
}

/// Process-shared front-end counters (all advisory: they report, they
/// never synchronize data).
#[derive(Default)]
pub(crate) struct FrontendCounters {
    pub accepted: AtomicU64,
    pub open: AtomicUsize,
    pub high_water: AtomicUsize,
    pub rejected: AtomicU64,
    pub ndjson: AtomicU64,
    pub binary: AtomicU64,
}

impl FrontendCounters {
    /// Records one installed connection and updates the high-water mark.
    pub(crate) fn connection_opened(&self) {
        // ORDERING: advisory statistics counters; reporting only.
        self.accepted.fetch_add(1, Ordering::Relaxed);
        // ORDERING: advisory gauge + monotonic max; reporting only.
        let now_open = self.open.fetch_add(1, Ordering::Relaxed) + 1;
        // ORDERING: monotonic max of an advisory gauge; reporting only.
        self.high_water.fetch_max(now_open, Ordering::Relaxed);
    }

    /// Records one closed connection.
    pub(crate) fn connection_closed(&self) {
        // ORDERING: advisory gauge; reporting only.
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    // ORDERING: advisory snapshot of statistics counters; the loads
    // report, they never synchronize data.
    pub(crate) fn stats(
        &self,
        mode: &'static str,
        reactor_threads: usize,
        dispatch_threads: usize,
    ) -> FrontendStats {
        FrontendStats {
            mode,
            reactor_threads,
            dispatch_threads,
            accepted_conns: self.accepted.load(Ordering::Relaxed),
            open_conns: self.open.load(Ordering::Relaxed),
            slab_high_water: self.high_water.load(Ordering::Relaxed),
            rejected_conns: self.rejected.load(Ordering::Relaxed),
            ndjson_conns: self.ndjson.load(Ordering::Relaxed),
            binary_conns: self.binary.load(Ordering::Relaxed),
        }
    }
}

/// One rendered response headed back to a reactor: the slab slot, the
/// generation that guards against slot reuse, and the wire bytes.
struct Completion {
    slot: usize,
    gen: u64,
    bytes: Vec<u8>,
}

/// What a dispatch worker received to serve.
enum JobKind {
    /// One NDJSON request line (newline stripped).
    Line(String),
    /// One binary frame payload (tag byte included).
    Frame(Vec<u8>),
}

struct DispatchJob {
    reactor: usize,
    slot: usize,
    gen: u64,
    kind: JobKind,
}

/// The cross-thread mailbox of one reactor: connections dealt to it by
/// the acceptor, responses posted by dispatch workers, and the waker
/// that makes its `poll` return to notice either.
struct ReactorShared {
    injected: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    waker_tx: Mutex<TcpStream>,
}

impl ReactorShared {
    /// Makes the owning reactor's `poll` return. Best-effort: a full
    /// socket buffer or a torn-down reactor both mean "it will wake up
    /// anyway" (pending bytes, or never — it exited).
    fn wake(&self) {
        if let Ok(mut tx) = self.waker_tx.lock() {
            let _ = tx.write(&[1u8]);
        }
    }
}

/// A loopback socket pair standing in for `pipe(2)` — std has no pipe,
/// but a connected TCP pair over 127.0.0.1 delivers the same "one byte
/// written here wakes a poll there" with nothing but std. The accept
/// is verified against the connecting end's address so a stranger
/// racing the ephemeral port cannot slip in.
fn waker_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let local = tx.local_addr()?;
    for _ in 0..16 {
        let (rx, peer) = listener.accept()?;
        if peer == local {
            tx.set_nonblocking(true)?;
            tx.set_nodelay(true)?;
            rx.set_nonblocking(true)?;
            return Ok((tx, rx));
        }
        // A foreign connection to our ephemeral waker port: drop it and
        // accept again (ours is already queued or about to be).
    }
    Err(io::Error::other(
        "waker pair: could not match the loopback connection",
    ))
}

/// Where a connection sits in its protocol lifecycle.
enum Wire {
    /// No bytes seen yet: the first byte selects the wire mode.
    Sniff,
    /// First byte was `b'M'`: collecting the 8-byte binary handshake.
    Handshake,
    /// Newline-delimited JSON.
    Ndjson,
    /// Length-prefixed binary frames (handshake done).
    Binary,
}

/// One slab entry: a connection's socket plus its state machine.
struct Conn {
    stream: TcpStream,
    /// Guards completions against slot reuse: a response for an earlier
    /// tenant of this slot carries a stale generation and is dropped.
    gen: u64,
    wire: Wire,
    /// A parsed request is with the dispatch workers; reading pauses
    /// (requests queue in `rbuf`) until its completion comes back.
    inflight: bool,
    /// Inbound bytes not yet parsed into a request.
    rbuf: Vec<u8>,
    /// Outbound bytes; `wpos..` is unwritten.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Peer sent EOF; serve what is buffered, then close.
    read_closed: bool,
    /// Protocol violation: close as soon as `wbuf` drains.
    kill: bool,
    /// In the hot poll set until this instant (bumped on every event);
    /// cold connections are only swept on the full-scan interval.
    hot_until: Instant,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64, hot_window: Duration) -> Self {
        Self {
            stream,
            gen,
            wire: Wire::Sniff,
            inflight: false,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            read_closed: false,
            kill: false,
            hot_until: Instant::now() + hot_window,
        }
    }

    fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Whether this connection must be in the fast-path poll set: any
    /// pending state (a request in flight, unflushed bytes either way)
    /// or a recent event.
    fn hot(&self, now: Instant) -> bool {
        self.inflight || self.pending_write() > 0 || !self.rbuf.is_empty() || now < self.hot_until
    }
}

/// Sentinel slot values for the two non-connection poll entries.
const SLOT_WAKER: usize = usize::MAX;
const SLOT_LISTENER: usize = usize::MAX - 1;

/// Whether the reactor should keep reading this connection.
///
/// Below `read_high_water`: always. At or above it: only while the
/// buffered bytes are a single *incomplete* request. Read backpressure
/// throttles pipelined complete-but-unparsed requests; it must never
/// park a legal large request mid-arrival, or a frame/line bigger than
/// the high-water mark (but within its protocol cap) would wedge the
/// connection forever — unparseable, unanswerable, never closed. The
/// in-progress request is instead bounded by its own cap
/// (`max_line_len` / [`framing::MAX_FRAME_LEN`]), whose violations
/// `advance` answers with their stable codes.
fn wants_read(config: &ReactorConfig, conn: &Conn) -> bool {
    if conn.inflight
        || conn.read_closed
        || conn.kill
        || conn.pending_write() >= config.write_high_water
    {
        return false;
    }
    if conn.rbuf.len() < config.read_high_water {
        return true;
    }
    match conn.wire {
        // No newline buffered = one incomplete line: read on until the
        // line completes, or one byte past `max_line_len` lets `advance`
        // fire the documented `bad_request` violation.
        Wire::Ndjson => !conn.rbuf.contains(&b'\n') && conn.rbuf.len() <= config.max_line_len,
        // An incomplete frame is bounded by its own length prefix
        // (≤ MAX_FRAME_LEN — anything larger is a violation `advance`
        // already answered); a complete frame waiting on dispatch is
        // the pipelined case backpressure exists for.
        Wire::Binary => matches!(framing::split_frame(&conn.rbuf), FrameStatus::Incomplete),
        // The wire mode is not known yet (`advance` has not looked at
        // this burst), so no per-request cap applies — hold at the
        // high-water mark; the sniff resolves before the next read.
        Wire::Sniff | Wire::Handshake => false,
    }
}

/// One event-loop thread's state.
struct ReactorThread {
    id: usize,
    config: ReactorConfig,
    shutdown: Arc<AtomicBool>,
    shared: Arc<ReactorShared>,
    /// Every reactor's mailbox (for round-robin dealing); `peers[id]`
    /// is this reactor's own `shared`.
    peers: Vec<Arc<ReactorShared>>,
    counters: Arc<FrontendCounters>,
    waker_rx: TcpStream,
    /// Reactor 0 owns the listener.
    listener: Option<TcpListener>,
    dispatch_tx: SyncSender<DispatchJob>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    open: usize,
    next_gen: u64,
    next_deal: usize,
}

impl ReactorThread {
    fn run(mut self) {
        let mut pollfds: Vec<poll::PollFd> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        let mut next_full_scan = Instant::now();
        let tick = self.config.poll_tick.as_millis().clamp(1, 1_000) as i32;
        loop {
            let now = Instant::now();
            let shutting = self.shutdown.load(Ordering::SeqCst);
            if shutting && drain_deadline.is_none() {
                drain_deadline = Some(now + self.config.shutdown_grace);
            }
            pollfds.clear();
            slots.clear();
            pollfds.push(poll::PollFd::new(self.waker_rx.as_raw_fd(), poll::POLLIN));
            slots.push(SLOT_WAKER);
            if !shutting {
                if let Some(listener) = &self.listener {
                    pollfds.push(poll::PollFd::new(listener.as_raw_fd(), poll::POLLIN));
                    slots.push(SLOT_LISTENER);
                }
            }
            // Two-tier poll set: the fast path polls only *hot*
            // connections, so active-request latency does not pay one
            // kernel fd-visit per idle connection per round trip; the
            // full slab (cold connections included) is swept on the
            // cold-scan interval to pick up long-idle wakeups and
            // hangups. During shutdown every pass is a full sweep.
            let full_scan = shutting || now >= next_full_scan;
            let before_conns = pollfds.len();
            for (i, conn) in self.slab.iter().enumerate() {
                let Some(conn) = conn else { continue };
                if !full_scan && !conn.hot(now) {
                    continue;
                }
                let mut events = 0i16;
                if !shutting && wants_read(&self.config, conn) {
                    events |= poll::POLLIN;
                }
                if conn.pending_write() > 0 {
                    events |= poll::POLLOUT;
                }
                if events != 0 {
                    pollfds.push(poll::PollFd::new(conn.stream.as_raw_fd(), events));
                    slots.push(i);
                }
            }
            let timeout = if full_scan || pollfds.len() == before_conns {
                // A full sweep — or an empty hot set, in which case the
                // cheapest thing is one *more* full sweep: re-run the
                // loop over every connection and block on the whole
                // slab (a blocked poll costs nothing until an event).
                if !full_scan {
                    for (i, conn) in self.slab.iter().enumerate() {
                        let Some(conn) = conn else { continue };
                        if conn.hot(now) {
                            continue; // already included above
                        }
                        if wants_read(&self.config, conn) {
                            pollfds.push(poll::PollFd::new(conn.stream.as_raw_fd(), poll::POLLIN));
                            slots.push(i);
                        }
                    }
                }
                next_full_scan = now + self.config.cold_scan_interval;
                tick
            } else {
                // Hot-only set: wake no later than the next full sweep.
                let until_sweep = next_full_scan.saturating_duration_since(now);
                (until_sweep.as_millis().clamp(1, tick as u128)) as i32
            };
            if poll::poll_fds(&mut pollfds, timeout).is_err() {
                // EINVAL and friends: unrecoverable for an event loop;
                // a tick's sleep stops a hot spin while shutdown is
                // still observable.
                std::thread::sleep(self.config.poll_tick);
            }
            self.drain_waker();
            self.install_injected();
            if !shutting {
                self.accept_batch();
            }
            self.apply_completions();
            let bump = Instant::now() + self.config.hot_window;
            for (fd, &slot) in pollfds.iter().zip(slots.iter()) {
                if slot == SLOT_WAKER || slot == SLOT_LISTENER || fd.revents == 0 {
                    continue;
                }
                if let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) {
                    conn.hot_until = bump; // an event keeps a connection hot
                }
                if fd.ready(poll::POLLIN) {
                    self.readable(slot);
                }
                if fd.ready(poll::POLLOUT) {
                    self.writable(slot);
                }
            }
            if shutting {
                let busy = self
                    .slab
                    .iter()
                    .flatten()
                    .any(|c| c.inflight || c.pending_write() > 0);
                let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
                if !busy || expired {
                    break;
                }
            }
        }
        // Close every socket (Drop) and account for the closures.
        for slot in 0..self.slab.len() {
            if self.slab[slot].is_some() {
                self.close(slot);
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.waker_rx.read(&mut buf) {
                Ok(0) => return, // all write halves gone; nothing to drain
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn install_injected(&mut self) {
        let streams: Vec<TcpStream> = {
            let mut injected = self
                .shared
                .injected
                .lock()
                .expect("reactor inject lock poisoned");
            std::mem::take(&mut *injected)
        };
        for stream in streams {
            self.install(stream);
        }
    }

    fn accept_batch(&mut self) {
        // Bound the batch so one connect storm cannot starve the
        // already-connected sockets of this loop iteration. Peers are
        // woken once per batch, not once per dealt connection.
        let mut dealt = vec![false; self.peers.len()];
        for _ in 0..512 {
            let Some(listener) = &self.listener else {
                break;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let target = self.next_deal % self.peers.len();
                    self.next_deal = self.next_deal.wrapping_add(1);
                    if target == self.id {
                        self.install(stream);
                    } else {
                        self.peers[target]
                            .injected
                            .lock()
                            .expect("reactor inject lock poisoned")
                            .push(stream);
                        dealt[target] = true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // EMFILE/ENFILE or a torn-down listener: back off until
                // the next tick instead of spinning.
                Err(_) => break,
            }
        }
        for (target, hit) in dealt.into_iter().enumerate() {
            if hit {
                self.peers[target].wake();
            }
        }
    }

    fn install(&mut self, stream: TcpStream) {
        if self.open
            >= self
                .config
                .max_connections
                .div_ceil(self.peers.len())
                .max(1)
            || stream.set_nonblocking(true).is_err()
        {
            // At capacity (this reactor's share of the slab) or a
            // socket already dead: drop it. Accept-then-close beats
            // leaving the client in the backlog forever.
            // ORDERING: advisory statistics counter; reporting only.
            self.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let _ = stream.set_nodelay(true);
        self.next_gen += 1;
        let conn = Conn::new(stream, self.next_gen, self.config.hot_window);
        match self.free.pop() {
            Some(slot) => self.slab[slot] = Some(conn),
            None => self.slab.push(Some(conn)),
        }
        self.open += 1;
        self.counters.connection_opened();
    }

    fn close(&mut self, slot: usize) {
        if self.slab[slot].take().is_some() {
            self.free.push(slot);
            self.open -= 1;
            self.counters.connection_closed();
        }
    }

    fn apply_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut completions = self
                .shared
                .completions
                .lock()
                .expect("reactor completion lock poisoned");
            std::mem::take(&mut *completions)
        };
        for completion in done {
            let Some(conn) = self.slab.get_mut(completion.slot).and_then(Option::as_mut) else {
                continue;
            };
            if conn.gen != completion.gen {
                continue; // the slot was recycled; stale response
            }
            conn.inflight = false;
            conn.wbuf.extend_from_slice(&completion.bytes);
            // The client likely answers a response with its next
            // request: keep the connection on the fast path.
            conn.hot_until = Instant::now() + self.config.hot_window;
            // The reply may unblock the next pipelined request sitting
            // in `rbuf`; `advance` parses it and flushes the socket.
            self.advance(completion.slot);
        }
    }

    fn readable(&mut self, slot: usize) {
        let mut buf = [0u8; 16 * 1024];
        {
            let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            loop {
                if !wants_read(&self.config, conn) {
                    break; // backpressure: parse before reading more
                }
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.read_closed = true;
                        break;
                    }
                    Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(slot);
                        return;
                    }
                }
            }
        }
        self.advance(slot);
    }

    fn writable(&mut self, slot: usize) {
        self.flush(slot);
    }

    /// Parses as much of `rbuf` as the one-request-in-flight discipline
    /// allows — wire-mode sniffing, the binary handshake, then at most
    /// one request dispatch — and flushes whatever is writable.
    fn advance(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.inflight || conn.kill {
                break;
            }
            match conn.wire {
                Wire::Sniff => {
                    match conn.rbuf.first() {
                        None => break,
                        Some(&b'M') => conn.wire = Wire::Handshake,
                        Some(_) => {
                            conn.wire = Wire::Ndjson;
                            // ORDERING: advisory statistics counter.
                            self.counters.ndjson.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Wire::Handshake => {
                    if conn.rbuf.len() < HANDSHAKE_LEN {
                        break;
                    }
                    let mut hello = [0u8; HANDSHAKE_LEN];
                    hello.copy_from_slice(&conn.rbuf[..HANDSHAKE_LEN]);
                    conn.rbuf.drain(..HANDSHAKE_LEN);
                    match framing::negotiate(&hello) {
                        Some(version) => {
                            conn.wbuf.extend_from_slice(&framing::handshake(version));
                            conn.wire = Wire::Binary;
                            // ORDERING: advisory statistics counter.
                            self.counters.binary.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            // No agreed framing exists to carry an
                            // error; closing is the specified response.
                            self.close(slot);
                            return;
                        }
                    }
                }
                Wire::Ndjson => match conn.rbuf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        let line_bytes: Vec<u8> = conn.rbuf.drain(..=pos).collect();
                        let Ok(line) = std::str::from_utf8(&line_bytes[..pos]) else {
                            // Same answer as the legacy engine: a stable
                            // `bad_request`, then close — never a lossy
                            // decode that parses mangled bytes.
                            let mut reply = raw_error_response(
                                "bad_request",
                                "request line is not valid UTF-8",
                            )
                            .into_bytes();
                            reply.push(b'\n');
                            conn.wbuf.extend_from_slice(&reply);
                            conn.kill = true;
                            break;
                        };
                        let line = line.trim().to_owned();
                        if line.is_empty() {
                            continue; // blank keep-alive line
                        }
                        self.submit(slot, JobKind::Line(line));
                    }
                    None => {
                        if conn.rbuf.len() > self.config.max_line_len {
                            let mut reply = raw_error_response(
                                "bad_request",
                                &format!(
                                    "request line exceeds {} bytes without a newline",
                                    self.config.max_line_len
                                ),
                            )
                            .into_bytes();
                            reply.push(b'\n');
                            conn.wbuf.extend_from_slice(&reply);
                            conn.kill = true;
                        }
                        break;
                    }
                },
                Wire::Binary => match framing::split_frame(&conn.rbuf) {
                    FrameStatus::Incomplete => break,
                    FrameStatus::Complete(payload) => {
                        conn.rbuf.drain(..4 + payload.len());
                        self.submit(slot, JobKind::Frame(payload));
                    }
                    FrameStatus::Violation(why) => {
                        // The byte stream cannot be re-synchronized
                        // after a bad length prefix: answer with the
                        // stable code, then close once it flushes.
                        conn.wbuf.extend_from_slice(&framing::frame_json_response(
                            &raw_error_response("frame_too_large", &why),
                        ));
                        conn.kill = true;
                        break;
                    }
                },
            }
        }
        self.flush(slot);
    }

    /// Hands one parsed request to the dispatch pool, or answers the
    /// overload/unavailable condition inline when the pool cannot take
    /// it (the event loop itself never blocks).
    fn submit(&mut self, slot: usize, kind: JobKind) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let binary = matches!(kind, JobKind::Frame(_));
        let job = DispatchJob {
            reactor: self.id,
            slot,
            gen: conn.gen,
            kind,
        };
        match self.dispatch_tx.try_send(job) {
            Ok(()) => conn.inflight = true,
            Err(e) => {
                let (code, message) = match e {
                    TrySendError::Full(_) => (
                        "overloaded",
                        "front-end dispatch queue is full; retry with backoff",
                    ),
                    TrySendError::Disconnected(_) => ("unavailable", "server is shutting down"),
                };
                let json = raw_error_response(code, message);
                if binary {
                    conn.wbuf
                        .extend_from_slice(&framing::frame_json_response(&json));
                } else {
                    conn.wbuf.extend_from_slice(json.as_bytes());
                    conn.wbuf.push(b'\n');
                }
                if matches!(code, "unavailable") {
                    conn.kill = true;
                }
            }
        }
    }

    /// Writes as much of `wbuf` as the socket takes, then applies the
    /// close conditions (violation flush-out, peer EOF with nothing
    /// left to serve).
    fn flush(&mut self, slot: usize) {
        let Some(conn) = self.slab.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut dead = false;
        while conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if conn.wpos == conn.wbuf.len() && !conn.wbuf.is_empty() {
            conn.wbuf.clear();
            conn.wpos = 0;
        }
        let drained = conn.pending_write() == 0;
        if dead || (drained && conn.kill) || (drained && conn.read_closed && !conn.inflight) {
            self.close(slot);
        }
    }
}

/// Serves one dispatch job against the handler and renders the wire
/// bytes for its connection's mode. JSON requests (both wire modes) go
/// through [`RequestHandler::handle_line`], so the decode/encode span
/// taxonomy and every error code are identical across framings; the
/// compact predict path mirrors the same spans around its binary codec.
fn serve_job(handler: &dyn RequestHandler, kind: &JobKind) -> Vec<u8> {
    match kind {
        JobKind::Line(line) => {
            let mut bytes = handler.handle_line(line).into_bytes();
            bytes.push(b'\n');
            bytes
        }
        JobKind::Frame(payload) => match payload.first() {
            Some(&TAG_REQ_JSON) => match std::str::from_utf8(&payload[1..]) {
                Ok(line) => framing::frame_json_response(&handler.handle_line(line)),
                // Frame boundaries stay synchronized, so (unlike a
                // mangled NDJSON line) the connection can live on.
                Err(_) => framing::frame_json_response(&raw_error_response(
                    "bad_request",
                    "JSON frame payload is not valid UTF-8",
                )),
            },
            Some(&TAG_REQ_PREDICT) => {
                let decoded = {
                    let _decode = Span::enter(Stage::Decode);
                    framing::decode_predict_request(&payload[1..])
                };
                match decoded {
                    Ok(request) => {
                        let _encode = Span::enter(Stage::Encode);
                        match handler.handle_predict(&request.model, request.input) {
                            Ok(prediction) => framing::frame_predict_response(&prediction),
                            Err(e) => framing::frame_json_response(&error_response(&e)),
                        }
                    }
                    Err(why) => framing::frame_json_response(&raw_error_response(
                        "bad_request",
                        &format!("malformed predict frame: {why}"),
                    )),
                }
            }
            _ => framing::frame_json_response(&raw_error_response(
                "bad_request",
                "unknown binary request tag",
            )),
        },
    }
}

fn dispatch_worker(
    rx: &Mutex<Receiver<DispatchJob>>,
    handler: &dyn RequestHandler,
    reactors: &[Arc<ReactorShared>],
) {
    loop {
        // Lock only around the blocking recv; siblings take over the
        // moment this worker moves on to serving.
        let job = match rx.lock().expect("dispatch receiver lock poisoned").recv() {
            Ok(job) => job,
            Err(_) => return, // every reactor exited; queue fully drained
        };
        let bytes = serve_job(handler, &job.kind);
        man_obs::flush();
        let reactor = &reactors[job.reactor];
        reactor
            .completions
            .lock()
            .expect("reactor completion lock poisoned")
            .push(Completion {
                slot: job.slot,
                gen: job.gen,
                bytes,
            });
        reactor.wake();
    }
}

/// A running reactor front-end: the event-loop threads, the dispatch
/// pool, and the shared counters.
pub(crate) struct ReactorFrontend {
    shutdown: Arc<AtomicBool>,
    reactors: Vec<Arc<ReactorShared>>,
    reactor_handles: Vec<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    counters: Arc<FrontendCounters>,
    reactor_threads: usize,
    dispatch_threads: usize,
}

impl ReactorFrontend {
    /// Spawns the event-loop threads and dispatch pool over an
    /// already-bound listener.
    pub(crate) fn spawn(
        listener: TcpListener,
        handler: Arc<dyn RequestHandler>,
        config: ReactorConfig,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let reactor_threads = config.reactor_threads.max(1);
        let dispatch_threads = config.dispatch_threads.max(1);
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(FrontendCounters::default());
        let (dispatch_tx, dispatch_rx) = mpsc::sync_channel(config.dispatch_queue.max(1));
        let dispatch_rx = Arc::new(Mutex::new(dispatch_rx));

        let mut shareds = Vec::with_capacity(reactor_threads);
        let mut waker_rxs = Vec::with_capacity(reactor_threads);
        for _ in 0..reactor_threads {
            let (tx, rx) = waker_pair()?;
            shareds.push(Arc::new(ReactorShared {
                injected: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                waker_tx: Mutex::new(tx),
            }));
            waker_rxs.push(rx);
        }

        let mut reactor_handles = Vec::with_capacity(reactor_threads);
        let mut worker_handles = Vec::with_capacity(dispatch_threads);
        let mut spawn_err: Option<io::Error> = None;
        let mut listener = Some(listener);
        for (id, waker_rx) in waker_rxs.into_iter().enumerate() {
            let thread = ReactorThread {
                id,
                config: config.clone(),
                shutdown: Arc::clone(&shutdown),
                shared: Arc::clone(&shareds[id]),
                peers: shareds.clone(),
                counters: Arc::clone(&counters),
                waker_rx,
                listener: listener.take(), // reactor 0 owns it
                dispatch_tx: dispatch_tx.clone(),
                slab: Vec::new(),
                free: Vec::new(),
                open: 0,
                next_gen: 0,
                next_deal: 0,
            };
            match std::thread::Builder::new()
                .name(format!("man-serve/reactor/{id}"))
                .spawn(move || thread.run())
            {
                Ok(handle) => reactor_handles.push(handle),
                Err(e) => {
                    spawn_err = Some(e);
                    break;
                }
            }
        }
        // The reactor threads hold the only senders now; when the last
        // exits, the workers drain the queue and see Disconnected.
        drop(dispatch_tx);

        if spawn_err.is_none() {
            for w in 0..dispatch_threads {
                let rx = Arc::clone(&dispatch_rx);
                let handler = Arc::clone(&handler);
                let reactors = shareds.clone();
                match std::thread::Builder::new()
                    .name(format!("man-serve/dispatch/{w}"))
                    .spawn(move || dispatch_worker(&rx, handler.as_ref(), &reactors))
                {
                    Ok(handle) => worker_handles.push(handle),
                    Err(e) => {
                        spawn_err = Some(e);
                        break;
                    }
                }
            }
        }

        if let Some(e) = spawn_err {
            // A half-built front-end must not leak live threads (or the
            // listener reactor 0 is holding): run the normal shutdown
            // over whatever was spawned before propagating the error.
            shutdown.store(true, Ordering::SeqCst);
            for shared in &shareds {
                shared.wake();
            }
            for handle in reactor_handles {
                let _ = handle.join();
            }
            // Reactors gone -> all senders dropped -> workers drain
            // whatever was queued, see Disconnected, and exit.
            for handle in worker_handles {
                let _ = handle.join();
            }
            return Err(e);
        }

        Ok(Self {
            shutdown,
            reactors: shareds,
            reactor_handles,
            worker_handles,
            counters,
            reactor_threads,
            dispatch_threads,
        })
    }

    pub(crate) fn stats(&self) -> FrontendStats {
        self.counters
            .stats("reactor", self.reactor_threads, self.dispatch_threads)
    }

    /// Drain-then-join shutdown: stop accepting, let in-flight requests
    /// answer (bounded by the grace period), close every socket, join
    /// everything. Idempotent.
    pub(crate) fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for reactor in &self.reactors {
            reactor.wake();
        }
        for handle in self.reactor_handles.drain(..) {
            let _ = handle.join();
        }
        // Reactors gone -> all dispatch senders dropped -> workers
        // drain whatever was queued and exit.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ReactorFrontend {
    fn drop(&mut self) {
        self.shutdown();
    }
}
