//! The readiness shim: a minimal, std-only binding of `poll(2)`.
//!
//! The reactor (DESIGN.md §13) needs exactly one thing the standard
//! library does not expose: "block until any of these sockets is
//! readable/writable, or a tick elapses". `poll(2)` is the portable
//! POSIX answer — level-triggered, no registration state in the kernel,
//! no hidden allocation — and binding it needs no `libc` crate: the
//! symbol lives in the C library every Rust program on a unix target
//! already links, and `std::os::fd` hands out the raw descriptors.
//!
//! This module is the serve crate's **only** unsafe site (the crate
//! root is `#![deny(unsafe_code)]`; the scoped allow below is on the
//! `man-analyze` unsafe allowlist and audited by the `static-analysis`
//! CI job). Everything above it — slab, state machines, framing — is
//! safe code over `TcpStream`s it owns.

use std::io;
use std::os::fd::RawFd;

/// `POLLIN`: the descriptor has bytes to read (or a peer hangup to
/// observe — Linux also flags readability on EOF).
pub const POLLIN: i16 = 0x001;
/// `POLLOUT`: a write would accept at least one byte.
pub const POLLOUT: i16 = 0x004;
/// `POLLERR`: error condition (revents only; always polled).
pub const POLLERR: i16 = 0x008;
/// `POLLHUP`: peer hung up (revents only; always polled).
pub const POLLHUP: i16 = 0x010;
/// `POLLNVAL`: the fd is not open (revents only; a slab bookkeeping
/// bug if it ever appears — the reactor closes such slots defensively).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set — layout-compatible with the C
/// `struct pollfd` on every unix libc (three naturally-aligned
/// integers; `repr(C)` pins field order).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The raw descriptor (from `AsRawFd`; the owner keeps it open
    /// across the call).
    pub fd: RawFd,
    /// Requested readiness: a bitset of [`POLLIN`] / [`POLLOUT`].
    pub events: i16,
    /// Kernel-reported readiness, filled in by [`poll_fds`].
    pub revents: i16,
}

impl PollFd {
    /// An entry asking for `events` readiness on `fd`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel flagged any of `mask` (or an error/hangup
    /// condition, which `poll` reports regardless of `events`).
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

// The C library's poll(2). Binding the symbol directly keeps the
// workspace free of the `libc` crate: std already links the platform C
// library on every unix target, so the symbol resolves at link time.
// `nfds_t` is `c_ulong` on the platforms this builds for (Linux, the
// BSDs, macOS); `usize` matches its width there.
#[allow(unsafe_code)]
extern "C" {
    fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
}

/// Blocks until at least one entry of `fds` is ready, `timeout_ms`
/// elapses (`0` returns immediately, negative blocks forever), or a
/// signal interrupts the wait. Returns how many entries have non-zero
/// `revents`; `Ok(0)` means the timeout elapsed.
///
/// # Errors
///
/// The raw OS error (`EINTR` is mapped to `Ok(0)` — the reactor treats
/// an interrupted wait exactly like an idle tick).
#[allow(unsafe_code)]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: the single unsafe expression of this crate. `fds` is a
    // live, exclusively-borrowed slice of `repr(C)` `PollFd` entries
    // whose layout matches the C `struct pollfd`, so the pointer/len
    // pair describes exactly `nfds` writable entries for the syscall's
    // duration; poll(2) only *writes* the `revents` field of each entry
    // (any i16 bit pattern is a valid value — no invariants to break)
    // and dereferences nothing else. Every fd value was obtained from a
    // live std socket via `AsRawFd` whose owner outlives the call
    // (closed-early fds are still memory-safe: the kernel just reports
    // POLLNVAL). No aliasing, no retained pointers, no unwinding
    // (extern "C"). The man-analyze unsafe audit pins this allow to
    // exactly this file.
    let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn timeout_elapses_on_idle_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        let mut fds = [PollFd::new(accepted.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).expect("poll");
        assert_eq!(n, 0, "idle socket must time out, not report readiness");
        assert!(!fds[0].ready(POLLIN));
        drop(stream);
    }

    #[test]
    fn written_byte_flags_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let mut stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        stream.write_all(b"x").expect("write");
        let mut fds = [PollFd::new(accepted.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1_000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
    }

    #[test]
    fn hangup_is_reported_even_without_pollin() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        drop(stream);
        let mut fds = [PollFd::new(accepted.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1_000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN), "EOF must wake the poller");
    }
}
