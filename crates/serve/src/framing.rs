//! The compact binary framing (wire format v1) — the high-QPS
//! alternative to NDJSON, negotiated per connection on the same port.
//!
//! See `PROTOCOL.md` for the normative spec. In short:
//!
//! * A binary client opens with an 8-byte handshake: the magic
//!   [`MAGIC`] (`"MANB"`), its highest supported version byte, and
//!   three reserved zero bytes. The server answers with the same magic
//!   and the version it selected (`min(client, server)`, today always
//!   [`VERSION`]); the connection then speaks length-prefixed frames in
//!   both directions. Anything *not* starting with `b'M'` is treated as
//!   NDJSON — JSON objects start with `{` (or whitespace), so the first
//!   byte disambiguates the two wire modes for free.
//! * A frame is a `u32` little-endian payload length followed by the
//!   payload; the payload's first byte is a tag. Requests:
//!   [`TAG_REQ_JSON`] (the NDJSON grammar, minus the newline) and
//!   [`TAG_REQ_PREDICT`] (the compact predict encoding). Responses:
//!   [`TAG_RESP_JSON`] (every non-predict response *and* every error)
//!   and [`TAG_RESP_PREDICT`] (class + raw `i64` scores).
//! * Frames longer than [`MAX_FRAME_LEN`] are rejected with the stable
//!   error code `frame_too_large` and the connection is closed — a
//!   4-byte prefix must never make the server allocate unbounded
//!   memory.
//!
//! The compact predict encoding is the point of the exercise: a
//! 256-input predict is ~1 KiB of raw little-endian `f32`s against
//! ~2.5 KiB of JSON text, and decoding is a bounds check plus
//! `from_le_bytes` per value instead of a recursive JSON parse.

use man_repro::Prediction;

/// The 4-byte magic a binary client leads with (`"MANB"`).
pub const MAGIC: [u8; 4] = *b"MANB";
/// The framing version this server speaks.
pub const VERSION: u8 = 1;
/// Handshake length in bytes (magic + version + 3 reserved zeros).
pub const HANDSHAKE_LEN: usize = 8;
/// Hard cap on one frame's payload. A length prefix beyond this is a
/// protocol violation (`frame_too_large`), not an allocation request.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Request payload tag: UTF-8 JSON body in the NDJSON grammar.
pub const TAG_REQ_JSON: u8 = 0x00;
/// Request payload tag: compact predict body.
pub const TAG_REQ_PREDICT: u8 = 0x01;
/// Response payload tag: UTF-8 JSON body (all non-predict responses
/// and all errors — error codes stay stable across both wire modes).
pub const TAG_RESP_JSON: u8 = 0x80;
/// Response payload tag: compact predict body (`u32` class, `u32`
/// score count, raw little-endian `i64` scores).
pub const TAG_RESP_PREDICT: u8 = 0x81;

/// Renders the 8-byte handshake for `version`.
pub fn handshake(version: u8) -> [u8; HANDSHAKE_LEN] {
    let mut h = [0u8; HANDSHAKE_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4] = version;
    h
}

/// Validates a client handshake and negotiates the session version:
/// `min(client_version, VERSION)`. Returns `None` on a bad magic, a
/// non-zero reserved byte, or a client version of 0 — the server closes
/// such connections without a reply (there is no agreed framing to
/// carry an error in yet).
pub fn negotiate(client: &[u8; HANDSHAKE_LEN]) -> Option<u8> {
    if client[..4] != MAGIC || client[5..] != [0, 0, 0] || client[4] == 0 {
        return None;
    }
    Some(client[4].min(VERSION))
}

/// Wraps a payload in a length-prefixed frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Wraps a JSON response line (without trailing newline) in a
/// [`TAG_RESP_JSON`] frame.
pub fn frame_json_response(json: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + json.len());
    payload.push(TAG_RESP_JSON);
    payload.extend_from_slice(json.as_bytes());
    frame(&payload)
}

/// Encodes a compact predict request frame.
pub fn frame_predict_request(model: &str, input: &[f32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + 2 + model.len() + 4 + 4 * input.len());
    payload.push(TAG_REQ_PREDICT);
    payload.extend_from_slice(&(model.len() as u16).to_le_bytes());
    payload.extend_from_slice(model.as_bytes());
    payload.extend_from_slice(&(input.len() as u32).to_le_bytes());
    for v in input {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    frame(&payload)
}

/// Encodes a compact predict response frame.
pub fn frame_predict_response(prediction: &Prediction) -> Vec<u8> {
    let scores = &prediction.scores;
    let mut payload = Vec::with_capacity(1 + 4 + 4 + 8 * scores.len());
    payload.push(TAG_RESP_PREDICT);
    payload.extend_from_slice(&(prediction.class as u32).to_le_bytes());
    payload.extend_from_slice(&(scores.len() as u32).to_le_bytes());
    for s in scores {
        payload.extend_from_slice(&s.to_le_bytes());
    }
    frame(&payload)
}

/// A decoded compact predict request body.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictRequest {
    /// Registry model name.
    pub model: String,
    /// Flat input vector.
    pub input: Vec<f32>,
}

/// Decodes the body of a [`TAG_REQ_PREDICT`] payload (everything after
/// the tag byte). Returns a human-readable description of the first
/// malformation on failure.
pub fn decode_predict_request(body: &[u8]) -> Result<PredictRequest, String> {
    let take = |buf: &[u8], n: usize, what: &str| -> Result<(), String> {
        if buf.len() < n {
            return Err(format!(
                "truncated predict body: {what} needs {n} bytes, {} left",
                buf.len()
            ));
        }
        Ok(())
    };
    take(body, 2, "model name length")?;
    let name_len = u16::from_le_bytes([body[0], body[1]]) as usize;
    let rest = &body[2..];
    take(rest, name_len, "model name")?;
    let model = std::str::from_utf8(&rest[..name_len])
        .map_err(|_| "model name is not UTF-8".to_string())?
        .to_owned();
    let rest = &rest[name_len..];
    take(rest, 4, "input count")?;
    let count = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    let rest = &rest[4..];
    // Divide rather than multiply: `4 * count` can overflow usize on
    // 32-bit targets (count is attacker-controlled, up to u32::MAX).
    if !rest.len().is_multiple_of(4) || rest.len() / 4 != count {
        return Err(format!(
            "predict body length mismatch: {count} inputs need {} bytes, got {}",
            4 * count as u64,
            rest.len()
        ));
    }
    let input = rest
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok(PredictRequest { model, input })
}

/// Decodes the body of a [`TAG_RESP_PREDICT`] payload (everything after
/// the tag byte) into `(class, scores)`.
pub fn decode_predict_response(body: &[u8]) -> Result<(usize, Vec<i64>), String> {
    if body.len() < 8 {
        return Err("truncated predict response header".into());
    }
    let class = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
    let count = u32::from_le_bytes([body[4], body[5], body[6], body[7]]) as usize;
    let rest = &body[8..];
    // Divide rather than multiply: see `decode_predict_request`.
    if !rest.len().is_multiple_of(8) || rest.len() / 8 != count {
        return Err(format!(
            "predict response length mismatch: {count} scores need {} bytes, got {}",
            8 * count as u64,
            rest.len()
        ));
    }
    let scores = rest
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    Ok((class, scores))
}

/// What [`split_frame`] found at the head of an inbound byte buffer.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameStatus {
    /// Not enough bytes yet for the length prefix or the full payload.
    Incomplete,
    /// A complete payload; the caller should consume `4 + payload.len()`
    /// bytes from the buffer.
    Complete(Vec<u8>),
    /// The length prefix exceeds [`MAX_FRAME_LEN`] (or is zero): the
    /// connection is beyond recovery because the byte stream can no
    /// longer be re-synchronized.
    Violation(String),
}

/// Inspects the head of `buf` for one complete frame without consuming
/// anything.
pub fn split_frame(buf: &[u8]) -> FrameStatus {
    if buf.len() < 4 {
        return FrameStatus::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 {
        return FrameStatus::Violation("zero-length frame".into());
    }
    if len > MAX_FRAME_LEN {
        return FrameStatus::Violation(format!(
            "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"
        ));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return FrameStatus::Incomplete;
    }
    FrameStatus::Complete(buf[4..total].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_negotiates_min_version() {
        assert_eq!(negotiate(&handshake(1)), Some(1));
        assert_eq!(negotiate(&handshake(7)), Some(VERSION));
        assert_eq!(negotiate(&handshake(0)), None);
        let mut bad = handshake(1);
        bad[0] = b'X';
        assert_eq!(negotiate(&bad), None);
        let mut reserved = handshake(1);
        reserved[7] = 1;
        assert_eq!(negotiate(&reserved), None);
    }

    #[test]
    fn predict_request_round_trips() {
        let framed = frame_predict_request("digits", &[0.25, -1.5, 3.0]);
        let FrameStatus::Complete(payload) = split_frame(&framed) else {
            panic!("one whole frame was written");
        };
        assert_eq!(payload[0], TAG_REQ_PREDICT);
        let req = decode_predict_request(&payload[1..]).expect("round trip");
        assert_eq!(req.model, "digits");
        assert_eq!(req.input, vec![0.25, -1.5, 3.0]);
    }

    #[test]
    fn predict_response_round_trips() {
        let p = Prediction {
            class: 3,
            scores: vec![-1024, 0, 77, i64::MAX],
            traces: None,
        };
        let framed = frame_predict_response(&p);
        let FrameStatus::Complete(payload) = split_frame(&framed) else {
            panic!("one whole frame was written");
        };
        assert_eq!(payload[0], TAG_RESP_PREDICT);
        let (class, scores) = decode_predict_response(&payload[1..]).expect("round trip");
        assert_eq!(class, 3);
        assert_eq!(scores, p.scores);
    }

    #[test]
    fn split_frame_handles_partial_and_oversized() {
        assert_eq!(split_frame(&[1, 0, 0]), FrameStatus::Incomplete);
        assert_eq!(split_frame(&[2, 0, 0, 0, 9]), FrameStatus::Incomplete);
        assert_eq!(
            split_frame(&[2, 0, 0, 0, 9, 9]),
            FrameStatus::Complete(vec![9, 9])
        );
        assert!(matches!(
            split_frame(&u32::MAX.to_le_bytes()),
            FrameStatus::Violation(_)
        ));
        assert!(matches!(
            split_frame(&[0, 0, 0, 0]),
            FrameStatus::Violation(_)
        ));
    }

    #[test]
    fn malformed_predict_bodies_are_described() {
        assert!(decode_predict_request(&[]).is_err());
        // name_len says 10 but only 2 bytes follow.
        assert!(decode_predict_request(&[10, 0, b'a', b'b']).is_err());
        // count says 2 floats but only 4 bytes follow.
        let mut body = vec![1, 0, b'm'];
        body.extend_from_slice(&2u32.to_le_bytes());
        body.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(decode_predict_request(&body).is_err());
        assert!(decode_predict_response(&[1, 2, 3]).is_err());
    }

    #[test]
    fn huge_declared_count_is_an_error_not_an_overflow() {
        // A count of u32::MAX must fail the length check, never feed a
        // `4 * count` / `8 * count` multiply (which would overflow usize
        // on 32-bit targets).
        let mut body = vec![1, 0, b'm'];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.extend_from_slice(&[0u8; 8]);
        assert!(decode_predict_request(&body).is_err());
        let mut resp = Vec::new();
        resp.extend_from_slice(&1u32.to_le_bytes());
        resp.extend_from_slice(&u32::MAX.to_le_bytes());
        resp.extend_from_slice(&[0u8; 16]);
        assert!(decode_predict_response(&resp).is_err());
    }
}
