//! **man-serve** — a concurrent serving runtime for compiled MAN models.
//!
//! The paper's economics only pay off under traffic: CSHM pre-computer
//! banks (and this workspace's product planes) amortize across
//! *concurrent requests* exactly like they amortize across a batch. This
//! crate turns many independent callers into batches:
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!  TCP (NDJSON) ───▶ │ ModelRegistry ──▶ ModelHost("digits")      │
//!  in-process ─────▶ │   name routing      bounded queue          │
//!   Client           │   hot load/reload   micro-batching workers │
//!                    │   unload/stats      warm InferenceSession  │
//!                    └────────────────────────────────────────────┘
//! ```
//!
//! * [`ModelHost`] — the dynamic micro-batching scheduler: a bounded
//!   MPSC queue and worker threads that coalesce up to
//!   [`BatchConfig::max_batch`] requests (waiting at most
//!   [`BatchConfig::max_wait`]) into one `infer_batch_shared` call, with
//!   oneshot replies, explicit `Overloaded` backpressure and
//!   drain-then-join shutdown.
//! * [`ModelRegistry`] — named models, hot (re)loaded from single-file
//!   `CompiledModel` artifacts, routed by name; [`Client`] is the
//!   in-process handle with the same four operations the wire protocol
//!   speaks.
//! * [`Server`] / [`TcpClient`] / [`BinaryClient`] — the TCP front-end
//!   over `std::net`: by default a nonblocking poll [`reactor`] that
//!   serves 10k+ mostly-idle connections on a handful of threads, with
//!   newline-delimited JSON and a compact length-prefixed binary
//!   [`framing`] negotiated per connection on the same port (see
//!   `PROTOCOL.md`, [`protocol`] for the grammar and stable error
//!   codes, and `MAN_FRONTEND=legacy` for the thread-per-connection
//!   fallback).
//! * [`metrics`] — per-model counters, octave-bucket latency and
//!   queue-wait percentiles and the micro-batch size distribution,
//!   exported through `stats` and `BENCH_serve.json`.
//! * [`exporter`] — the unified telemetry export plane: a Prometheus
//!   text page (`metrics` verb, [`prometheus_page`]) and an optional
//!   periodic [`MetricsExporter`] thread, unifying model stats,
//!   `man-par` pool utilization and the `man-obs` per-stage span
//!   histograms; the `dump_trace` verb retrieves flight-recorder
//!   dumps.
//! * [`cluster`] — the multi-process tier: a [`Router`] that serves
//!   both wire modes on one port through the same front-end engines
//!   (via [`RequestHandler`]) and fans out to worker processes over the
//!   binary framing, with consistent-hash sharding, per-model replica
//!   sets, health-check-driven failover and drain-then-join rebalance
//!   — any replica answers bit-identically.
//!
//! Everything is `std`-only and deterministic-by-construction: a batch
//! of predictions is bit-identical to the same inputs served
//! sequentially, whatever the interleaving — the property
//! `tests/` pins down under thread hammering and mid-flight reloads.
//!
//! # Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use man_serve::{BatchConfig, Client, ModelRegistry, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = ModelRegistry::new(BatchConfig::default());
//! registry.load_file("digits", "digits.man.json")?;
//!
//! // In-process serving:
//! let client = Client::new(Arc::clone(&registry));
//! let p = client.predict("digits", vec![0.0; 256])?;
//! println!("class {}", p.class);
//!
//! // Or over TCP:
//! let server = Server::bind("127.0.0.1:0", registry)?;
//! println!("serving on {}", server.local_addr());
//! # Ok(()) }
//! ```

// The one exception to no-unsafe is the poll(2) shim in
// `reactor::poll` — a single scoped allow, pinned to that file by the
// man-analyze unsafe audit (`forbid` would reject even that).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cluster;
pub mod exporter;
pub mod framing;
pub mod metrics;
pub mod protocol;
pub mod reactor;
pub mod registry;
pub mod server;

pub use batcher::{BatchConfig, ModelHost, SessionMode};
pub use cluster::{HashRing, Router, RouterConfig, RouterStats};
pub use exporter::{prometheus_page, MetricsExporter};
pub use metrics::{LatencyHistogram, ModelMetrics, ModelStats};
pub use protocol::Request;
pub use reactor::{FrontendStats, ReactorConfig};
pub use registry::{Client, ModelInfo, ModelRegistry};
pub use server::{
    BinaryClient, FrontendMode, RequestHandler, Server, ServerConfig, TcpClient, WireError,
};

// The observability plane itself (levels, span stages, flight
// recorder): re-exported so servers and tests can set the level and
// pull dumps without a separate dependency edge.
pub use man_obs as obs;

// Re-export the facade's serving-relevant types so a server binary can
// depend on `man-serve` alone.
pub use man_repro::{
    AutoTuning, CompiledModel, InferenceSession, ManError, Parallelism, Prediction, ServeError,
};
