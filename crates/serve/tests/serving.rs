//! End-to-end tests of the serving runtime: concurrency determinism,
//! backpressure, hot reload under load, graceful drain, and the TCP
//! front-end's full round-trip.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use man::alphabet::AlphabetSet;
use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_nn::network::Network;
use man_repro::{CompiledModel, ManError, Pipeline, ServeError};
use man_serve::{BatchConfig, Client, ModelRegistry, Parallelism, Server, SessionMode, TcpClient};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const IN_DIM: usize = 24;

fn compiled_model(seed: u64, set: AlphabetSet) -> CompiledModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(IN_DIM, 12, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(12, 4, &mut rng)),
    ]);
    Pipeline::from_network(net)
        .with_bits(8)
        .with_alphabets(vec![set])
        .constrain()
        .expect("projection-only pipeline")
        .compile()
        .expect("projected weights compile")
}

fn probe_input(i: usize) -> Vec<f32> {
    (0..IN_DIM)
        .map(|j| ((i * 7 + j * 3) % 13) as f32 / 13.0)
        .collect()
}

fn quick_config() -> BatchConfig {
    BatchConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(200),
        queue_capacity: 64,
        workers: 2,
        session_mode: SessionMode::Warm,
        request_timeout: Duration::from_secs(10),
        ..BatchConfig::default()
    }
}

#[test]
fn hammering_clients_get_bit_identical_predictions() {
    let model = compiled_model(1, AlphabetSet::a2());
    // Sequential reference through a plain session.
    let mut reference = model.session();
    let expected: Vec<Vec<i64>> = (0..48)
        .map(|i| reference.infer(&probe_input(i)).expect("shape ok").scores)
        .collect();

    let registry = ModelRegistry::new(quick_config());
    registry.install("m", model);
    let client = Client::new(Arc::clone(&registry));

    let threads: Vec<_> = (0..6)
        .map(|t| {
            let client = client.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                // Each thread replays every probe several times, out of
                // phase with the others, so batches mix inputs freely.
                for round in 0..4 {
                    for i in 0..expected.len() {
                        let i = (i + t * 11 + round * 17) % expected.len();
                        let p = client
                            .predict("m", probe_input(i))
                            .expect("serving must not fail under load");
                        assert_eq!(
                            p.scores, expected[i],
                            "thread {t} probe {i}: scheduler must be bit-identical"
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread panicked");
    }

    let stats = registry.stats(Some("m")).expect("stats");
    assert_eq!(stats.len(), 1);
    let s = &stats[0];
    assert_eq!(s.completed, 6 * 4 * 48);
    assert_eq!(s.errors, 0);
    assert_eq!(s.rejected, 0);
    assert!(s.batches > 0 && s.mean_batch >= 1.0);
    assert!(s.p50_us > 0, "latency histogram must have filled");
}

#[test]
fn shape_mismatch_is_rejected_before_queueing() {
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(2, AlphabetSet::a1()));
    let client = Client::new(registry);
    match client.predict("m", vec![0.5; IN_DIM + 3]) {
        Err(ManError::Shape { expected, got }) => {
            assert_eq!((expected, got), (IN_DIM, IN_DIM + 3));
        }
        other => panic!("expected ManError::Shape, got {other:?}"),
    }
    let stats = client.stats(Some("m")).expect("stats");
    assert_eq!(stats[0].errors, 1);
    assert_eq!(stats[0].accepted, 0, "bad shapes never enter the queue");
}

#[test]
fn unknown_model_is_a_typed_error() {
    let client = Client::new(ModelRegistry::with_defaults());
    match client.predict("ghost", vec![0.0; 4]) {
        Err(ManError::Serve(ServeError::UnknownModel(name))) => assert_eq!(name, "ghost"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    match client.unload("ghost") {
        Err(ManError::Serve(ServeError::UnknownModel(_))) => {}
        other => panic!("expected UnknownModel, got {other:?}"),
    }
}

#[test]
fn full_queue_rejects_with_overloaded() {
    // A tiny queue and a scheduler that cannot drain: the submitting
    // side must see explicit Overloaded errors, not unbounded latency.
    let registry = ModelRegistry::new(BatchConfig {
        max_batch: 1,
        max_wait: Duration::ZERO,
        queue_capacity: 2,
        workers: 1,
        session_mode: SessionMode::Warm,
        request_timeout: Duration::from_secs(10),
        ..BatchConfig::default()
    });
    registry.install("m", compiled_model(3, AlphabetSet::a1()));
    let client = Client::new(Arc::clone(&registry));

    // Saturate from many threads; with 12 concurrent submitters and a
    // 2-slot queue, at least a few must hit the Overloaded path.
    let saw_overload = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..12)
        .map(|t| {
            let client = client.clone();
            let saw_overload = Arc::clone(&saw_overload);
            std::thread::spawn(move || {
                for i in 0..40 {
                    match client.predict("m", probe_input(t * 40 + i)) {
                        Ok(_) => {}
                        Err(ManError::Serve(ServeError::Overloaded { capacity, .. })) => {
                            assert_eq!(capacity, 2);
                            saw_overload.store(true, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error under load: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("load thread panicked");
    }
    let stats = registry.stats(Some("m")).expect("stats");
    assert_eq!(stats[0].completed + stats[0].rejected, 12 * 40);
    assert!(
        saw_overload.load(Ordering::Relaxed),
        "a 2-slot queue under 12 hammering threads must overflow at least once \
         (completed {}, rejected {})",
        stats[0].completed,
        stats[0].rejected
    );
}

#[test]
fn reload_under_load_never_drops_or_corrupts_requests() {
    // Two different-alphabet compilations of different networks: their
    // predictions differ, but each request must be answered by a
    // complete, uncorrupted model — either generation, never a mix, and
    // transient Unavailable (caught mid-swap) is the only legal error.
    let before = compiled_model(10, AlphabetSet::a4());
    let after = compiled_model(11, AlphabetSet::a1());
    let probes: Vec<Vec<f32>> = (0..16).map(probe_input).collect();
    let expect_before: Vec<Vec<i64>> = {
        let mut s = before.session();
        probes
            .iter()
            .map(|x| s.infer(x).expect("shape ok").scores)
            .collect()
    };
    let expect_after: Vec<Vec<i64>> = {
        let mut s = after.session();
        probes
            .iter()
            .map(|x| s.infer(x).expect("shape ok").scores)
            .collect()
    };

    let registry = ModelRegistry::new(quick_config());
    registry.install("m", before.clone());
    let client = Client::new(Arc::clone(&registry));
    let stop = Arc::new(AtomicBool::new(false));

    let hammers: Vec<_> = (0..4)
        .map(|t| {
            let client = client.clone();
            let stop = Arc::clone(&stop);
            let probes = probes.clone();
            let expect_before = expect_before.clone();
            let expect_after = expect_after.clone();
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    i = (i + 1) % probes.len();
                    match client.predict("m", probes[i].clone()) {
                        Ok(p) => {
                            assert!(
                                p.scores == expect_before[i] || p.scores == expect_after[i],
                                "probe {i} answered by neither generation: {:?}",
                                p.scores
                            );
                            served += 1;
                        }
                        Err(ManError::Serve(ServeError::Unavailable(_))) => {}
                        Err(other) => panic!("unexpected error during reload: {other:?}"),
                    }
                }
                served
            })
        })
        .collect();

    // Hot-swap back and forth while the hammers run.
    for gen in 0..6 {
        std::thread::sleep(Duration::from_millis(20));
        let model = if gen % 2 == 0 {
            after.clone()
        } else {
            before.clone()
        };
        registry.install("m", model);
    }
    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let served: u64 = hammers
        .into_iter()
        .map(|t| t.join().expect("hammer thread panicked"))
        .sum();
    assert!(served > 0, "hammers must have been served through reloads");
}

#[test]
fn unload_drains_accepted_requests() {
    // Requests already queued when unload starts still get answers.
    let registry = ModelRegistry::new(BatchConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        queue_capacity: 256,
        workers: 1,
        session_mode: SessionMode::Persistent,
        request_timeout: Duration::from_secs(10),
        ..BatchConfig::default()
    });
    registry.install("m", compiled_model(5, AlphabetSet::a2()));
    let client = Client::new(Arc::clone(&registry));
    let submitters: Vec<_> = (0..32)
        .map(|i| {
            let client = client.clone();
            std::thread::spawn(move || client.predict("m", probe_input(i)))
        })
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    registry.unload("m").expect("model is loaded");
    let mut answered = 0;
    for s in submitters {
        match s.join().expect("submitter panicked") {
            Ok(_) => answered += 1,
            // Submitted after the queue closed: a typed rejection.
            Err(ManError::Serve(ServeError::Unavailable(_))) => {}
            Err(other) => panic!("unexpected drain error: {other:?}"),
        }
    }
    assert!(answered > 0, "queued requests must drain through unload");
    assert!(registry.names().is_empty());
}

#[test]
fn tcp_roundtrip_load_predict_stats_unload() {
    // The artifact on disk, loaded over the wire.
    let model = compiled_model(6, AlphabetSet::a2());
    let expected = {
        let mut s = model.session();
        s.infer(&probe_input(0)).expect("shape ok")
    };
    let path = std::env::temp_dir().join("man_serve_tcp_roundtrip.man.json");
    model.save(&path).expect("artifact saves");

    let registry = ModelRegistry::new(quick_config());
    let mut server = Server::bind("127.0.0.1:0", registry).expect("loopback bind");
    let mut client = TcpClient::connect(server.local_addr()).expect("loopback connect");

    // load
    let info = client
        .load("digits", path.to_str().expect("utf-8 temp path"))
        .expect("load over the wire");
    let obj = info.as_object().expect("load response is an object");
    let input_len = obj
        .iter()
        .find(|(k, _)| k == "input_len")
        .and_then(|(_, v)| <usize as serde::Deserialize>::from_value(v).ok())
        .expect("load response carries input_len");
    assert_eq!(input_len, IN_DIM);

    // predict — bit-identical to the in-process session.
    let (class, scores) = client
        .predict("digits", &probe_input(0))
        .expect("predict over the wire");
    assert_eq!(class, expected.class);
    assert_eq!(scores, expected.scores);

    // bad requests keep the connection alive and carry stable codes.
    let err = client
        .predict("digits", &probe_input(0)[..4])
        .expect_err("short input must fail");
    assert_eq!(err.code, "shape_mismatch");
    let err = client.predict("ghost", &probe_input(0)).unwrap_err();
    assert_eq!(err.code, "unknown_model");
    let garbage = client.request("{ not json").expect("server replies");
    let obj = garbage.as_object().expect("error response is an object");
    assert!(obj
        .iter()
        .any(|(k, v)| k == "error" && matches!(v, serde::Value::Str(s) if s == "bad_request")));

    // stats
    let stats = client.stats(Some("digits")).expect("stats over the wire");
    let text = serde_json::to_string(&stats).expect("stats reserialize");
    assert!(text.contains("\"completed\":1"), "{text}");
    assert!(text.contains("\"p50_us\""), "{text}");

    // unload, then the model is gone.
    client.unload("digits").expect("unload over the wire");
    let err = client.predict("digits", &probe_input(0)).unwrap_err();
    assert_eq!(err.code, "unknown_model");

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn cold_and_warm_modes_agree_bitwise() {
    let model = compiled_model(7, AlphabetSet::a4());
    let mut reference = model.session();
    let expected: Vec<Vec<i64>> = (0..12)
        .map(|i| reference.infer(&probe_input(i)).expect("shape ok").scores)
        .collect();
    for mode in [
        SessionMode::Cold,
        SessionMode::Persistent,
        SessionMode::Warm,
    ] {
        let registry = ModelRegistry::new(BatchConfig {
            session_mode: mode,
            ..quick_config()
        });
        registry.install("m", model.clone());
        let client = Client::new(registry);
        for (i, want) in expected.iter().enumerate() {
            let p = client.predict("m", probe_input(i)).expect("serving ok");
            assert_eq!(&p.scores, want, "{mode:?} probe {i}");
        }
    }
}

#[test]
fn intra_batch_parallelism_is_bit_identical_and_exposed_in_config() {
    let model = compiled_model(8, AlphabetSet::a2());
    let mut reference = model.session();
    let expected: Vec<Vec<i64>> = (0..24)
        .map(|i| reference.infer(&probe_input(i)).expect("shape ok").scores)
        .collect();
    for parallelism in [Parallelism::Threads(3), Parallelism::Auto] {
        let registry = ModelRegistry::new(BatchConfig {
            parallelism,
            ..quick_config()
        });
        assert_eq!(registry.config().parallelism, parallelism);
        registry.install("m", model.clone());
        let client = Client::new(Arc::clone(&registry));
        // Hammer from several threads so micro-batches actually form and
        // get row-sharded inside the worker sessions.
        std::thread::scope(|scope| {
            for t in 0..4 {
                let client = client.clone();
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..3 {
                        for i in 0..expected.len() {
                            let i = (i + t * 5 + round * 7) % expected.len();
                            let p = client.predict("m", probe_input(i)).expect("serving ok");
                            assert_eq!(
                                p.scores,
                                expected[i],
                                "{} probe {i}: sharded batch must be bit-identical",
                                parallelism.label()
                            );
                        }
                    }
                });
            }
        });
        registry.shutdown();
    }
}

#[test]
fn stats_snapshot_is_consistent_with_routing() {
    // `stats` takes its snapshot under the registry lock, so it can
    // never describe a model that a completed unload already evicted —
    // and a sequenced unload -> stats must report UnknownModel.
    let registry = ModelRegistry::new(quick_config());
    registry.install("stable", compiled_model(20, AlphabetSet::a1()));
    registry.install("flapper", compiled_model(21, AlphabetSet::a1()));
    let client = Client::new(Arc::clone(&registry));

    let stop = Arc::new(AtomicBool::new(false));
    let flapper_model = compiled_model(21, AlphabetSet::a1());
    let flap = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                registry.unload("flapper").expect("flapper was installed");
                registry.install("flapper", flapper_model.clone());
            }
        })
    };
    for _ in 0..200 {
        // Every snapshot set is a consistent routing snapshot: "stable"
        // is always present, nothing else but "flapper" ever appears.
        let stats = client.stats(None).expect("stats never fails");
        let names: Vec<&str> = stats.iter().map(|s| s.model.as_str()).collect();
        assert!(names.contains(&"stable"), "names = {names:?}");
        assert!(
            names.iter().all(|n| *n == "stable" || *n == "flapper"),
            "names = {names:?}"
        );
        // Per-model stats under churn either succeed or report
        // UnknownModel; no panic, no stale-host snapshot.
        match client.stats(Some("flapper")) {
            Ok(s) => assert_eq!(s[0].model, "flapper"),
            Err(ManError::Serve(ServeError::UnknownModel(n))) => assert_eq!(n, "flapper"),
            Err(other) => panic!("unexpected stats error: {other:?}"),
        }
    }
    stop.store(true, Ordering::Relaxed);
    flap.join().expect("flapper thread panicked");

    // Sequenced happens-before: once unload returns, stats must not know
    // the model any more.
    registry.unload("flapper").expect("final unload");
    match client.stats(Some("flapper")) {
        Err(ManError::Serve(ServeError::UnknownModel(_))) => {}
        other => panic!("stats after unload must be UnknownModel, got {other:?}"),
    }
    let names: Vec<String> = client
        .stats(None)
        .expect("stats")
        .into_iter()
        .map(|s| s.model)
        .collect();
    assert_eq!(names, vec!["stable".to_owned()]);
}
