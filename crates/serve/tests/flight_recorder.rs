//! Flight-recorder smoke: force an `Overloaded` rejection with full
//! span tracing on and assert the triggered dump parses, anchors the
//! rejecting request, and covers the whole request lifecycle —
//! queue-wait, coalesce, dispatch (with the resolved shard-plan
//! label) and kernel (with the resolved MAC-kernel label) — for a
//! single request id. Also round-trips the `dump_trace` and `metrics`
//! protocol verbs over loopback TCP.
//!
//! The obs level is process-global state, so everything lives in one
//! `#[test]` — parallel test threads must not flip the level under
//! each other.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use man::alphabet::AlphabetSet;
use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_nn::network::Network;
use man_repro::{CompiledModel, ManError, Pipeline, ServeError};
use man_serve::obs::{self, flight, ObsLevel};
use man_serve::{BatchConfig, Client, ModelRegistry, Server, SessionMode, TcpClient};
use serde::Value;

const IN_DIM: usize = 24;

fn compiled_model(seed: u64) -> CompiledModel {
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(seed)
    };
    let net = Network::new(vec![
        Layer::Dense(Dense::new(IN_DIM, 12, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(12, 4, &mut rng)),
    ]);
    Pipeline::from_network(net)
        .with_bits(8)
        .with_alphabets(vec![AlphabetSet::a1()])
        .constrain()
        .expect("projection-only pipeline")
        .compile()
        .expect("projected weights compile")
}

fn probe_input(i: usize) -> Vec<f32> {
    (0..IN_DIM)
        .map(|j| ((i * 7 + j * 3) % 13) as f32 / 13.0)
        .collect()
}

fn field<'v>(obj: &'v [(String, Value)], key: &str) -> &'v Value {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("dump object is missing field `{key}`"))
}

fn str_field(obj: &[(String, Value)], key: &str) -> String {
    match field(obj, key) {
        Value::Str(s) => s.clone(),
        other => panic!("field `{key}` is not a string: {other:?}"),
    }
}

fn u64_field(obj: &[(String, Value)], key: &str) -> u64 {
    match field(obj, key) {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        other => panic!("field `{key}` is not an integer: {other:?}"),
    }
}

#[test]
fn forced_overload_dumps_a_full_request_lifecycle() {
    obs::set_level(ObsLevel::Spans);
    flight::clear();

    // A scheduler that can be both productive and overwhelmed: one
    // worker, a 2-slot queue. Completed requests populate the ring with
    // lifecycle spans; the hammering phase then trips `Overloaded`,
    // which triggers the dump.
    let registry = ModelRegistry::new(BatchConfig {
        max_batch: 4,
        max_wait: Duration::from_micros(200),
        queue_capacity: 2,
        workers: 1,
        session_mode: SessionMode::Warm,
        request_timeout: Duration::from_secs(10),
        ..BatchConfig::default()
    });
    registry.install("m", compiled_model(3));
    let client = Client::new(Arc::clone(&registry));

    // Phase A: uncontended predicts, so complete request lifecycles sit
    // in the ring when the dump freezes its 1s window.
    for i in 0..32 {
        client
            .predict("m", probe_input(i))
            .expect("uncontended predicts succeed");
    }

    // Phase B: saturate until at least one submission is rejected.
    let saw_overload = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..12)
        .map(|t| {
            let client = client.clone();
            let saw_overload = Arc::clone(&saw_overload);
            std::thread::spawn(move || {
                for i in 0..40 {
                    match client.predict("m", probe_input(t * 40 + i)) {
                        Ok(_) => {}
                        Err(ManError::Serve(ServeError::Overloaded { .. })) => {
                            saw_overload.store(true, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error under load: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("load thread panicked");
    }
    assert!(
        saw_overload.load(Ordering::Relaxed),
        "a 2-slot queue under 12 hammering threads must overflow"
    );

    // The dump: valid JSON, anchored to the rejecting request.
    let dump_text = flight::last_dump().expect("an Overloaded rejection triggers a dump");
    let dump: Value = serde_json::from_str(&dump_text).expect("the dump is valid JSON");
    let dump = dump.as_object().expect("the dump is a JSON object");
    assert_eq!(str_field(dump, "reason"), "overloaded");
    let trigger_req = u64_field(dump, "req");
    assert_ne!(trigger_req, 0, "the dump anchors the rejecting request");

    let events = match field(dump, "events") {
        Value::Array(rows) => rows,
        other => panic!("`events` is not an array: {other:?}"),
    };
    assert!(!events.is_empty());

    // Index the events: stages seen per request id, and the labels the
    // dispatch/kernel stages carried.
    let mut stages_by_req: BTreeMap<u64, BTreeSet<String>> = BTreeMap::new();
    let mut dispatch_labels: BTreeSet<String> = BTreeSet::new();
    let mut kernel_labels: BTreeSet<String> = BTreeSet::new();
    for event in events {
        let event = event.as_object().expect("events are objects");
        let stage = str_field(event, "stage");
        let req = u64_field(event, "req");
        match stage.as_str() {
            "dispatch" => {
                dispatch_labels.insert(str_field(event, "label"));
            }
            "kernel" => {
                kernel_labels.insert(str_field(event, "label"));
            }
            _ => {}
        }
        stages_by_req.entry(req).or_default().insert(stage);
    }

    // The rejecting request's own trace reached the ring before the
    // dump froze (incident + flush precede the trigger).
    let trigger_stages = stages_by_req
        .get(&trigger_req)
        .unwrap_or_else(|| panic!("no events for the rejecting request {trigger_req}"));
    assert!(
        trigger_stages.contains("overloaded"),
        "rejecting request {trigger_req} lacks its overloaded incident: {trigger_stages:?}"
    );

    // Some single request id covers the full lifecycle.
    let lifecycle = ["queue_wait", "coalesce", "dispatch", "kernel"];
    let covered = stages_by_req
        .iter()
        .find(|(req, stages)| **req != 0 && lifecycle.iter().all(|s| stages.contains(*s)));
    assert!(
        covered.is_some(),
        "no request id covers {lifecycle:?}; saw {stages_by_req:?}"
    );

    // Dispatch events carry the resolved shard-plan label, kernel
    // events the resolved MAC kernel.
    let stats = registry.stats(Some("m")).expect("stats").remove(0);
    for label in &dispatch_labels {
        assert!(
            ["sequential", "rows", "neurons"].contains(&label.as_str()),
            "unexpected shard-plan label {label:?}"
        );
    }
    assert!(
        kernel_labels.contains(&stats.kernel),
        "kernel events {kernel_labels:?} lack the resolved kernel {:?}",
        stats.kernel
    );

    // The protocol verbs see the same state over loopback TCP: the
    // flight ring and last dump are process-global, so a server over
    // any registry serves them.
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&registry)).expect("loopback bind");
    let mut tcp = TcpClient::connect(server.local_addr()).expect("loopback connect");
    let wire_dump = tcp
        .dump_trace()
        .expect("dump_trace round-trips")
        .expect("a dump exists");
    let wire_dump = wire_dump.as_object().expect("wire dump is an object");
    assert_eq!(str_field(wire_dump, "reason"), "overloaded");
    assert_eq!(u64_field(wire_dump, "req"), trigger_req);
    let page = tcp.metrics_page().expect("metrics round-trips");
    assert!(page.contains("man_serve_requests_total"), "{page}");
    assert!(
        page.contains(r#"man_stage_seconds_bucket{stage="kernel""#),
        "the export plane must carry the per-stage histograms: {page}"
    );
    server.shutdown();
    registry.shutdown();
}
