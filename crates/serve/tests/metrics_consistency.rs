//! Hammering test for metrics-snapshot consistency: while writer
//! threads pound the scheduler, a racing reader takes `stats`
//! snapshots and asserts the counter contract *during* the race —
//! every counter monotone, and at every instant
//! `accepted >= completed + rejected + timed_out + errors` (the
//! snapshot reads disjoint outcomes first and `accepted` last, and the
//! submitter increments `accepted` before offering the queue and
//! exactly one outcome before returning, so no interleaving can show
//! an outcome without its acceptance). At quiescence the inequalities
//! close to equalities and the batch histogram must account for every
//! delivered request.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use man::alphabet::AlphabetSet;
use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_nn::network::Network;
use man_repro::{CompiledModel, ManError, Pipeline, ServeError};
use man_serve::{BatchConfig, Client, ModelRegistry, ModelStats, SessionMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const IN_DIM: usize = 24;

fn compiled_model(seed: u64) -> CompiledModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(IN_DIM, 12, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(12, 4, &mut rng)),
    ]);
    Pipeline::from_network(net)
        .with_bits(8)
        .with_alphabets(vec![AlphabetSet::a1()])
        .constrain()
        .expect("projection-only pipeline")
        .compile()
        .expect("projected weights compile")
}

fn probe_input(i: usize) -> Vec<f32> {
    (0..IN_DIM)
        .map(|j| ((i * 7 + j * 3) % 13) as f32 / 13.0)
        .collect()
}

/// The instantaneous invariant plus per-counter monotonicity against
/// the previous snapshot.
fn assert_consistent(prev: &ModelStats, cur: &ModelStats) {
    for (name, p, c) in [
        ("accepted", prev.accepted, cur.accepted),
        ("completed", prev.completed, cur.completed),
        ("rejected", prev.rejected, cur.rejected),
        ("timed_out", prev.timed_out, cur.timed_out),
        ("errors", prev.errors, cur.errors),
        ("batches", prev.batches, cur.batches),
    ] {
        assert!(
            c >= p,
            "counter `{name}` went backwards under load: {p} -> {c}"
        );
    }
    assert!(
        cur.accepted >= cur.completed + cur.rejected + cur.timed_out + cur.errors,
        "outcome counted before its acceptance: accepted {} < completed {} \
         + rejected {} + timed_out {} + errors {}",
        cur.accepted,
        cur.completed,
        cur.rejected,
        cur.timed_out,
        cur.errors,
    );
}

#[test]
fn snapshots_stay_consistent_under_concurrent_hammering() {
    let registry = ModelRegistry::new(BatchConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(200),
        // Small enough that 8 hammering writers trip Overloaded, so the
        // rejected counter participates in the race too.
        queue_capacity: 4,
        workers: 2,
        session_mode: SessionMode::Warm,
        // Effectively no timeouts: at quiescence every accepted request
        // must resolve to completed or rejected.
        request_timeout: Duration::from_secs(60),
        ..BatchConfig::default()
    });
    registry.install("m", compiled_model(7));
    let client = Client::new(Arc::clone(&registry));

    let ok_total = Arc::new(AtomicU64::new(0));
    let rejected_total = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..8)
        .map(|t| {
            let client = client.clone();
            let ok_total = Arc::clone(&ok_total);
            let rejected_total = Arc::clone(&rejected_total);
            std::thread::spawn(move || {
                for i in 0..150 {
                    match client.predict("m", probe_input(t * 150 + i)) {
                        Ok(_) => {
                            ok_total.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ManError::Serve(ServeError::Overloaded { .. })) => {
                            rejected_total.fetch_add(1, Ordering::Relaxed);
                            // Back off so the queue can drain and the
                            // run mixes accepts with rejections.
                            std::thread::sleep(Duration::from_micros(300));
                        }
                        Err(other) => panic!("unexpected error under load: {other:?}"),
                    }
                }
            })
        })
        .collect();

    // The racing reader: snapshot as fast as possible for the whole
    // duration of the hammering and check every pair.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut prev = registry.stats(Some("m")).expect("stats")[0].clone();
            let mut snapshots = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let cur = registry.stats(Some("m")).expect("stats")[0].clone();
                assert_consistent(&prev, &cur);
                prev = cur;
                snapshots += 1;
            }
            snapshots
        })
    };

    for w in writers {
        w.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().expect("reader panicked");
    assert!(
        snapshots >= 10,
        "the reader must actually race the writers (took {snapshots} snapshots)"
    );

    // Quiescence: the inequalities close into exact accounting.
    let stats = registry.stats(Some("m")).expect("stats").remove(0);
    let ok = ok_total.load(Ordering::Relaxed);
    let rejected = rejected_total.load(Ordering::Relaxed);
    assert_eq!(ok + rejected, 8 * 150, "every submission resolved");
    assert_eq!(stats.completed, ok);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.timed_out, 0, "60s timeout must never fire here");
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.accepted, stats.completed + stats.rejected);
    assert_eq!(stats.queue_depth, 0);

    // Histogram-sum consistency: the micro-batch size distribution
    // accounts for every batch and every delivered request.
    let batch_count: u64 = stats.batch_histogram.iter().sum();
    let batched_requests: u64 = stats
        .batch_histogram
        .iter()
        .enumerate()
        .map(|(i, n)| (i as u64 + 1) * n)
        .sum();
    assert_eq!(batch_count, stats.batches);
    assert_eq!(batched_requests, stats.completed);
    let mean = batched_requests as f64 / batch_count as f64;
    assert!(
        (stats.mean_batch - mean).abs() < 1e-9,
        "mean_batch {} inconsistent with histogram mean {mean}",
        stats.mean_batch
    );

    registry.shutdown();
}
