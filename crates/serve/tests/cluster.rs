//! Cluster-tier tests: the consistent-hash invariant, through-router
//! bit-equality against single-process serving, worker-kill failover
//! and drain-then-join rebalance — all in-process (worker `Server`s on
//! loopback ports), so they run everywhere `cargo test` does. The
//! true multi-*process* drill (spawned workers, `kill -9`) lives in
//! the `cluster` bench bin and CI job.

use std::sync::Arc;
use std::time::Duration;

use man::alphabet::AlphabetSet;
use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_nn::network::Network;
use man_repro::{CompiledModel, Pipeline};
use man_serve::{
    BatchConfig, BinaryClient, HashRing, ModelRegistry, RequestHandler, Router, RouterConfig,
    Server, TcpClient,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Value;

const IN_DIM: usize = 24;
const CLASSES: usize = 4;

fn compiled_model(seed: u64) -> CompiledModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(IN_DIM, 12, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(12, CLASSES, &mut rng)),
    ]);
    Pipeline::from_network(net)
        .with_bits(8)
        .with_alphabets(vec![AlphabetSet::a1()])
        .constrain()
        .expect("projection-only pipeline")
        .compile()
        .expect("projected weights compile")
}

fn probe_input(i: usize) -> Vec<f32> {
    (0..IN_DIM)
        .map(|j| ((i * 7 + j * 3) % 13) as f32 / 13.0)
        .collect()
}

/// One in-process worker: its server handle, registry and address.
type Worker = (Server, Arc<ModelRegistry>, String);

/// One in-process worker: a stock registry + server on an ephemeral
/// loopback port.
fn spawn_worker() -> Worker {
    let registry = ModelRegistry::new(BatchConfig::default());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry)).expect("worker binds");
    let addr = server.local_addr().to_string();
    (server, registry, addr)
}

/// A router over `n` fresh workers, with fast failover tuning.
fn spawn_cluster(n: usize, config: RouterConfig) -> (Vec<Worker>, Arc<Router>) {
    let workers: Vec<_> = (0..n).map(|_| spawn_worker()).collect();
    let router = Router::new(config);
    for (_, _, addr) in &workers {
        router.join_node(addr).expect("worker joins");
    }
    (workers, router)
}

fn fast_config() -> RouterConfig {
    RouterConfig {
        request_timeout: Duration::from_millis(1500),
        health_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    }
}

fn field<'v>(obj: &'v [(String, Value)], key: &str) -> &'v Value {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("response is missing field `{key}`"))
}

/// The reference answers the cluster must reproduce byte-for-byte: the
/// same artifact served by one in-process session.
fn reference_answers(model: &CompiledModel, count: usize) -> Vec<(usize, Vec<i64>)> {
    let batch: Vec<Vec<f32>> = (0..count).map(probe_input).collect();
    model
        .session()
        .infer_batch_shared(&batch)
        .expect("shapes match")
        .into_iter()
        .map(|p| (p.class, p.scores))
        .collect()
}

fn save_artifact(model: &CompiledModel, name: &str) -> String {
    let path = std::env::temp_dir().join(format!(
        "man_cluster_{name}_{}.man.json",
        std::process::id()
    ));
    model.save(&path).expect("artifact saves");
    path.to_str().expect("utf-8 temp path").to_owned()
}

// ---------------------------------------------------------------------
// Consistent-hash invariant.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Removing (or re-adding) a node only remaps models whose replica
    /// set touched that node; every other model keeps its exact
    /// replica list, and survivors keep their relative order. This is
    /// the property that makes rebalance proportional to the moved
    /// node's data instead of a full reshuffle.
    #[test]
    fn ring_remaps_only_touched_models(
        node_count in 2usize..7,
        vnodes in prop_oneof![Just(16usize), Just(64usize)],
        replicas in 1usize..4,
        victim in 0usize..7,
        model_count in 1usize..60,
    ) {
        let victim = victim % node_count;
        let mut full = HashRing::new(vnodes);
        for i in 0..node_count {
            full.add(&format!("10.0.0.{i}:9000"));
        }
        let victim_name = format!("10.0.0.{victim}:9000");
        let mut less = full.clone();
        less.remove(&victim_name);
        for m in 0..model_count {
            let key = format!("model-{m}");
            let before: Vec<&str> = full.replicas(&key, replicas);
            let after: Vec<&str> = less.replicas(&key, replicas);
            if before.contains(&victim_name.as_str()) {
                let kept: Vec<&str> = before
                    .iter()
                    .copied()
                    .filter(|&n| n != victim_name)
                    .collect();
                let still: Vec<&str> = after
                    .iter()
                    .copied()
                    .filter(|n| kept.contains(n))
                    .collect();
                prop_assert_eq!(kept, still, "survivors reorder for {}", key);
            } else {
                prop_assert_eq!(&before, &after, "untouched {} re-sharded", key);
            }
        }
        // Adding the node back restores the original placement exactly
        // (the ring is a pure function of its node set).
        less.add(&victim_name);
        prop_assert_eq!(less, full);
    }
}

// ---------------------------------------------------------------------
// Through-router serving.
// ---------------------------------------------------------------------

/// Both wire modes through the router answer bit-identically to a
/// single-process session, under concurrent clients spread across 2
/// replicas.
#[test]
fn router_traffic_is_bit_identical_to_single_process() {
    let model = compiled_model(7);
    let path = save_artifact(&model, "bitident");
    let reference = Arc::new(reference_answers(&model, 16));
    let (workers, router) = spawn_cluster(3, fast_config());
    let front = Server::bind_handler(
        "127.0.0.1:0",
        Arc::clone(&router) as Arc<dyn RequestHandler>,
        Default::default(),
    )
    .expect("router front-end binds");
    let front_addr = front.local_addr();

    let mut admin = TcpClient::connect(front_addr).expect("admin connects");
    let loaded = admin.load("digits", &path).expect("load fans out");
    let obj = loaded.as_object().expect("load response is an object");
    let replicas = <u64 as serde::Deserialize>::from_value(field(obj, "replicas"))
        .expect("load response carries a numeric `replicas`");
    assert_eq!(replicas, 2, "default replica set");

    let mut handles = Vec::new();
    for t in 0..6 {
        let reference = Arc::clone(&reference);
        handles.push(std::thread::spawn(move || {
            // Even threads speak NDJSON, odd threads binary MANB —
            // both through the same router port.
            if t % 2 == 0 {
                let mut client = TcpClient::connect(front_addr).expect("ndjson connects");
                for i in 0..24 {
                    let k = (t * 24 + i) % reference.len();
                    let got = client.predict("digits", &probe_input(k)).expect("predicts");
                    assert_eq!(got, reference[k], "ndjson answer diverged at {k}");
                }
            } else {
                let mut client = BinaryClient::connect(front_addr).expect("manb connects");
                for i in 0..24 {
                    let k = (t * 24 + i) % reference.len();
                    let got = client.predict("digits", &probe_input(k)).expect("predicts");
                    assert_eq!(got, reference[k], "binary answer diverged at {k}");
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client thread panicked");
    }

    // The model landed on exactly 2 of the 3 workers.
    let hosting = workers
        .iter()
        .filter(|(_, registry, _)| registry.names().contains(&"digits".to_owned()))
        .count();
    assert_eq!(hosting, 2, "replica fan-out");

    // The router's health verb reports its role and the placement.
    let health = admin.request(r#"{"op":"health"}"#).expect("health answers");
    let obj = health.as_object().expect("health is an object");
    assert_eq!(field(obj, "role"), &Value::Str("router".into()));
    let Value::Array(nodes) = field(obj, "nodes") else {
        panic!("health `nodes` is not an array");
    };
    assert_eq!(nodes.len(), 3);

    // Stats fan-out tags every row with its node.
    let stats = admin.stats(Some("digits")).expect("stats fans out");
    let obj = stats.as_object().expect("stats is an object");
    let Value::Array(rows) = field(obj, "models") else {
        panic!("stats `models` is not an array");
    };
    assert_eq!(rows.len(), 2, "one row per replica");
    for row in rows {
        let row = row.as_object().expect("stats row is an object");
        assert!(matches!(field(row, "node"), Value::Str(_)));
    }

    // The cluster metrics page rides the standard verb.
    let page = admin.metrics_page().expect("metrics answers");
    assert!(
        page.contains("man_cluster_backend_up"),
        "cluster metrics exported"
    );
    router.shutdown();
}

/// Killing a worker mid-load is invisible to clients: every request
/// still answers, bit-identically, and the router records failovers.
#[test]
fn worker_kill_failover_is_bit_identical_with_zero_errors() {
    let model = compiled_model(11);
    let path = save_artifact(&model, "failover");
    let reference = reference_answers(&model, 16);
    let config = RouterConfig {
        request_timeout: Duration::from_millis(800),
        health_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    };
    let (mut workers, router) = spawn_cluster(3, config);
    router.load_model("digits", &path).expect("load fans out");

    // Kill the *preferred* replica so the very next predict must fail
    // over: shut its server down and drop its registry.
    let preferred = router.stats().models[0].replicas[0].clone();
    let idx = workers
        .iter()
        .position(|(_, _, addr)| *addr == preferred)
        .expect("preferred replica is a worker");
    let (mut server, registry, _) = workers.remove(idx);
    server.shutdown();
    registry.shutdown();

    for (k, expected) in reference.iter().enumerate() {
        let p = router
            .route_predict("digits", &probe_input(k))
            .expect("failover answers");
        assert_eq!(
            &(p.class, p.scores),
            expected,
            "failover answer diverged at {k}"
        );
    }
    let stats = router.stats();
    assert!(stats.failovers > 0, "failovers were recorded");
    assert_eq!(stats.no_backend, 0, "no request burned the whole budget");
    let dead = stats
        .nodes
        .iter()
        .find(|n| n.node == preferred)
        .expect("dead node still tabled");
    assert!(!dead.healthy, "health checker demoted the dead worker");

    // Removing the dead node rebalances onto the survivors and serving
    // continues uninterrupted.
    router.leave_node(&preferred).expect("dead node leaves");
    for (k, expected) in reference.iter().enumerate() {
        let p = router
            .route_predict("digits", &probe_input(k))
            .expect("post-leave answers");
        assert_eq!(&(p.class, p.scores), expected);
    }
    router.shutdown();
}

/// Drain-then-join rebalance: a joining node is loaded before it takes
/// traffic, a leaving node's models move before it goes, and untouched
/// models keep their placement.
#[test]
fn join_and_leave_rebalance_with_drain() {
    let model = compiled_model(23);
    let path = save_artifact(&model, "rebalance");
    let reference = reference_answers(&model, 8);
    let (workers, router) = spawn_cluster(3, fast_config());
    let names: Vec<String> = (0..5).map(|i| format!("m{i}")).collect();
    for name in &names {
        router.load_model(name, &path).expect("load fans out");
    }
    let before: Vec<_> = router.stats().models;

    // Join a fourth worker: models it now owns must be loaded on it
    // (drain-then-join), everything else must not move.
    let (_w4_server, w4_registry, w4_addr) = spawn_worker();
    let moved = router.join_node(&w4_addr).expect("worker joins");
    let after: Vec<_> = router.stats().models;
    let mut touched = 0;
    for (b, a) in before.iter().zip(after.iter()) {
        assert_eq!(b.model, a.model);
        if a.replicas.contains(&w4_addr) {
            touched += 1;
            assert!(
                w4_registry.names().contains(&b.model),
                "joining node was not pre-loaded with {}",
                b.model
            );
        } else {
            assert_eq!(b.replicas, a.replicas, "untouched model {} moved", b.model);
        }
    }
    assert_eq!(moved, touched, "join reported the moved-model count");
    for name in &names {
        for (k, expected) in reference.iter().enumerate() {
            let p = router
                .route_predict(name, &probe_input(k))
                .expect("answers");
            assert_eq!(&(p.class, p.scores), expected);
        }
    }

    // Leave one of the original workers: its models move first, the
    // drained worker ends up empty, and serving never hiccups.
    let leaving = workers[0].2.clone();
    router.leave_node(&leaving).expect("worker leaves");
    let drained = &workers[0].1;
    assert!(
        drained.names().is_empty(),
        "leaving worker still hosts {:?}",
        drained.names()
    );
    for name in &names {
        for (k, expected) in reference.iter().enumerate() {
            let p = router
                .route_predict(name, &probe_input(k))
                .expect("answers");
            assert_eq!(&(p.class, p.scores), expected);
        }
        assert!(
            !router
                .stats()
                .models
                .iter()
                .any(|pl| pl.model == *name && pl.replicas.contains(&leaving)),
            "{name} still placed on the departed node"
        );
    }
    router.shutdown();
}

/// Router admin edges: double join, unknown leave, unknown model, and
/// an unreachable node all answer their stable codes.
#[test]
fn router_admin_edges() {
    let (workers, router) = spawn_cluster(2, fast_config());
    let addr = workers[0].2.clone();
    let err = router.join_node(&addr).expect_err("double join rejected");
    assert_eq!(man_serve::protocol::error_code(&err), "bad_request");
    let err = router
        .leave_node("127.0.0.1:1")
        .expect_err("unknown leave rejected");
    assert_eq!(man_serve::protocol::error_code(&err), "bad_request");
    let err = router
        .route_predict("ghost", &probe_input(0))
        .expect_err("unknown model rejected");
    assert_eq!(man_serve::protocol::error_code(&err), "unknown_model");
    // Joining a dead address fails the probe and leaves the table
    // untouched.
    let err = router
        .join_node("127.0.0.1:1")
        .expect_err("dead node rejected");
    assert_eq!(man_serve::protocol::error_code(&err), "io");
    assert_eq!(router.stats().nodes.len(), 2);
    router.shutdown();
}
