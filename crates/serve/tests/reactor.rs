//! End-to-end tests of the reactor front-end and the binary framing:
//! wire-mode negotiation, slow-loris partial frames, oversized length
//! prefixes, mid-frame disconnects, NDJSON↔binary interleaving on one
//! server, backpressure, and reload-under-load through the reactor.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use man::alphabet::AlphabetSet;
use man_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use man_nn::network::Network;
use man_repro::{CompiledModel, Pipeline};
use man_serve::{
    framing, BatchConfig, BinaryClient, FrontendMode, ModelRegistry, ReactorConfig, Server,
    ServerConfig, SessionMode, TcpClient,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const IN_DIM: usize = 24;

fn compiled_model(seed: u64, set: AlphabetSet) -> CompiledModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net = Network::new(vec![
        Layer::Dense(Dense::new(IN_DIM, 12, &mut rng)),
        Layer::Activation(ActivationLayer::new(Activation::Sigmoid)),
        Layer::Dense(Dense::new(12, 4, &mut rng)),
    ]);
    Pipeline::from_network(net)
        .with_bits(8)
        .with_alphabets(vec![set])
        .constrain()
        .expect("projection-only pipeline")
        .compile()
        .expect("projected weights compile")
}

fn probe_input(i: usize) -> Vec<f32> {
    (0..IN_DIM)
        .map(|j| ((i * 7 + j * 3) % 13) as f32 / 13.0)
        .collect()
}

fn quick_config() -> BatchConfig {
    BatchConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(200),
        queue_capacity: 64,
        workers: 2,
        session_mode: SessionMode::Warm,
        request_timeout: Duration::from_secs(10),
        ..BatchConfig::default()
    }
}

fn reactor_server(registry: Arc<ModelRegistry>) -> Server {
    Server::bind_with(
        "127.0.0.1:0",
        registry,
        ServerConfig {
            mode: Some(FrontendMode::Reactor),
            reactor: ReactorConfig::default(),
        },
    )
    .expect("reactor server binds")
}

#[test]
fn reactor_is_the_default_mode() {
    // An explicit config pins the tests; but the plain bind must
    // resolve to the reactor unless MAN_FRONTEND overrides it.
    if std::env::var("MAN_FRONTEND").is_err() {
        let server = Server::bind("127.0.0.1:0", ModelRegistry::with_defaults())
            .expect("default server binds");
        assert_eq!(server.mode(), FrontendMode::Reactor);
        assert_eq!(server.frontend_stats().mode, "reactor");
    }
}

#[test]
fn ndjson_roundtrip_through_reactor() {
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(3, AlphabetSet::a1()));
    let mut reference = compiled_model(3, AlphabetSet::a1()).session();
    let mut server = reactor_server(Arc::clone(&registry));

    let mut tcp = TcpClient::connect(server.local_addr()).expect("connect");
    for i in 0..8 {
        let (class, scores) = tcp.predict("m", &probe_input(i)).expect("predict");
        let expected = reference.infer(&probe_input(i)).expect("shape ok");
        assert_eq!(class, expected.class);
        assert_eq!(scores, expected.scores, "reactor must stay bit-identical");
    }
    // Typed error, connection kept.
    let err = tcp.predict("m", &[0.1; 3]).expect_err("short input");
    assert_eq!(err.code, "shape_mismatch");
    let (_, _) = tcp.predict("m", &probe_input(0)).expect("conn survives");

    let stats = server.frontend_stats();
    assert_eq!(stats.mode, "reactor");
    assert!(stats.accepted_conns >= 1);
    assert!(stats.slab_high_water >= 1);
    assert_eq!(stats.ndjson_conns, 1);
    server.shutdown();
    registry.shutdown();
}

#[test]
fn binary_and_ndjson_clients_interleave_bit_identically() {
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(4, AlphabetSet::a2()));
    let mut server = reactor_server(Arc::clone(&registry));

    let mut ndjson = TcpClient::connect(server.local_addr()).expect("ndjson connect");
    let mut binary = BinaryClient::connect(server.local_addr()).expect("binary handshake");
    assert_eq!(binary.version(), framing::VERSION);

    for i in 0..16 {
        let (jc, js) = ndjson
            .predict("m", &probe_input(i))
            .expect("ndjson predict");
        let (bc, bs) = binary
            .predict("m", &probe_input(i))
            .expect("binary predict");
        assert_eq!(jc, bc, "class must match across wire modes");
        assert_eq!(js, bs, "scores must be bit-identical across wire modes");
    }
    // Non-predict verbs ride JSON frames on the binary connection.
    let stats = binary
        .request_ok(r#"{"op":"stats","model":"m"}"#)
        .expect("stats");
    assert!(stats.as_object().is_some());
    // Errors carry the same stable codes on both wires.
    let jerr = ndjson
        .predict("nope", &probe_input(0))
        .expect_err("unknown");
    let berr = binary
        .predict("nope", &probe_input(0))
        .expect_err("unknown");
    assert_eq!(jerr.code, "unknown_model");
    assert_eq!(berr.code, "unknown_model");

    let fe = server.frontend_stats();
    assert_eq!(fe.ndjson_conns, 1);
    assert_eq!(fe.binary_conns, 1);
    server.shutdown();
    registry.shutdown();
}

#[test]
fn slow_loris_partial_frames_are_served_once_complete() {
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(5, AlphabetSet::a1()));
    let mut reference = compiled_model(5, AlphabetSet::a1()).session();
    let server = reactor_server(Arc::clone(&registry));

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    // Dribble the handshake one byte at a time.
    for b in framing::handshake(framing::VERSION) {
        stream.write_all(&[b]).expect("write");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut hello = [0u8; framing::HANDSHAKE_LEN];
    stream.read_exact(&mut hello).expect("handshake reply");
    assert_eq!(framing::negotiate(&hello), Some(framing::VERSION));

    // Dribble a predict frame in 3-byte chunks; the reactor must hold
    // the partial frame and answer only once it completes.
    let frame = framing::frame_predict_request("m", &probe_input(1));
    for chunk in frame.chunks(3) {
        stream.write_all(chunk).expect("write chunk");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("response length");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("response payload");
    assert_eq!(payload[0], framing::TAG_RESP_PREDICT);
    let (class, scores) = framing::decode_predict_response(&payload[1..]).expect("decodes");
    let expected = reference.infer(&probe_input(1)).expect("shape ok");
    assert_eq!(class, expected.class);
    assert_eq!(scores, expected.scores);
    registry.shutdown();
}

#[test]
fn oversized_length_prefix_gets_stable_code_and_close() {
    let registry = ModelRegistry::new(quick_config());
    let server = reactor_server(Arc::clone(&registry));

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&framing::handshake(1)).expect("handshake");
    let mut hello = [0u8; framing::HANDSHAKE_LEN];
    stream.read_exact(&mut hello).expect("handshake reply");
    // A length prefix beyond MAX_FRAME_LEN must be rejected without the
    // server ever allocating the claimed size.
    stream
        .write_all(&(framing::MAX_FRAME_LEN + 1).to_le_bytes())
        .expect("bad prefix");
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("error frame length");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream
        .read_exact(&mut payload)
        .expect("error frame payload");
    assert_eq!(payload[0], framing::TAG_RESP_JSON);
    let body = std::str::from_utf8(&payload[1..]).expect("utf8");
    assert!(
        body.contains(r#""error":"frame_too_large""#),
        "stable code expected, got: {body}"
    );
    // ... and the connection must then close.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after violation");
    assert!(rest.is_empty());
    registry.shutdown();
}

#[test]
fn bad_handshake_closes_without_reply() {
    let registry = ModelRegistry::with_defaults();
    let server = reactor_server(Arc::clone(&registry));
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Starts with 'M' so it sniffs as binary, but the magic is wrong.
    stream.write_all(b"MXXB\x01\0\0\0").expect("bad magic");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF");
    assert!(rest.is_empty(), "no reply exists for an unframed stream");
    registry.shutdown();
}

#[test]
fn mid_frame_disconnect_is_cleaned_up() {
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(6, AlphabetSet::a1()));
    let mut server = reactor_server(Arc::clone(&registry));

    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.write_all(&framing::handshake(1)).expect("handshake");
        let mut hello = [0u8; framing::HANDSHAKE_LEN];
        stream.read_exact(&mut hello).expect("handshake reply");
        let frame = framing::frame_predict_request("m", &probe_input(0));
        // Half a frame, then vanish.
        stream.write_all(&frame[..frame.len() / 2]).expect("half");
    } // drop = RST/FIN mid-frame

    // The slot must be reclaimed and the server fully functional.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.frontend_stats().open_conns > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "mid-frame disconnect must release its slab slot"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut binary = BinaryClient::connect(server.local_addr()).expect("fresh client");
    binary.predict("m", &probe_input(2)).expect("still serving");
    server.shutdown();
    registry.shutdown();
}

#[test]
fn pipelined_ndjson_lines_all_get_answers_in_order() {
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(7, AlphabetSet::a1()));
    let server = reactor_server(Arc::clone(&registry));

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Burst 20 requests in one write, then half-close: every line must
    // still be answered, in order, before the server closes.
    let mut burst = String::new();
    for i in 0..20 {
        let input: Vec<String> = probe_input(i).iter().map(f32::to_string).collect();
        burst.push_str(&format!(
            "{{\"op\":\"predict\",\"model\":\"m\",\"input\":[{}]}}\n",
            input.join(",")
        ));
    }
    stream.write_all(burst.as_bytes()).expect("burst write");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut all = String::new();
    stream.read_to_string(&mut all).expect("drain responses");
    let lines: Vec<&str> = all.lines().collect();
    assert_eq!(lines.len(), 20, "every pipelined request gets a reply");
    for line in lines {
        assert!(line.contains(r#""ok":true"#), "unexpected reply: {line}");
    }
    registry.shutdown();
}

#[test]
fn reload_under_load_through_reactor() {
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(8, AlphabetSet::a1()));
    let mut server = reactor_server(Arc::clone(&registry));
    let addr = server.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ok = 0usize;
                let mut binary = BinaryClient::connect(addr).expect("connect");
                let mut i = t;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    match binary.predict("m", &probe_input(i % 48)) {
                        Ok((_, scores)) => {
                            assert_eq!(scores.len(), 4, "scores from either epoch");
                            ok += 1;
                        }
                        // During the registry swap a request may see the
                        // model draining; those are typed, not torn.
                        Err(e) => assert!(
                            matches!(e.code.as_str(), "unavailable" | "unknown_model"),
                            "unexpected error under reload: {e}"
                        ),
                    }
                    i += 1;
                }
                ok
            })
        })
        .collect();

    for seed in [9, 10, 11] {
        std::thread::sleep(Duration::from_millis(30));
        registry.install("m", compiled_model(seed, AlphabetSet::a1()));
    }
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let served: usize = workers
        .into_iter()
        .map(|w| w.join().expect("load thread panicked"))
        .sum();
    assert!(served > 0, "requests must flow across hot reloads");
    server.shutdown();
    registry.shutdown();
}

/// Drains a socket until EOF or error, tolerating a reset after the
/// server killed the connection.
fn read_until_close(stream: &mut TcpStream) -> String {
    let mut reply = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => reply.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&reply).into_owned()
}

#[test]
fn large_requests_beyond_read_high_water_are_served() {
    // A single request bigger than read_high_water (default 1 MiB) but
    // within the protocol caps must complete: read backpressure may
    // park pipelined complete requests, never one mid-arrival.
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(14, AlphabetSet::a1()));
    let mut server = reactor_server(Arc::clone(&registry));
    let padded = format!(
        r#"{{"op":"stats","model":"m"}}{}"#,
        " ".repeat(2 * 1024 * 1024)
    );

    // NDJSON: one ~2 MiB request line.
    let mut tcp = TcpClient::connect(server.local_addr()).expect("connect");
    let value = tcp.request(&padded).expect("2 MiB line answered");
    assert!(
        serde_json::to_string(&value)
            .expect("render")
            .contains(r#""ok":true"#),
        "large NDJSON line must be served"
    );

    // Binary: one ~2 MiB JSON frame.
    let mut binary = BinaryClient::connect(server.local_addr()).expect("handshake");
    binary.request_ok(&padded).expect("2 MiB frame answered");

    server.shutdown();
    registry.shutdown();
}

#[test]
fn over_long_ndjson_line_gets_bad_request_past_high_water() {
    // The max_line_len violation sits *above* read_high_water: the
    // reactor must keep reading past the mark for the documented
    // bad_request to be reachable at all.
    let registry = ModelRegistry::new(quick_config());
    let max_line_len = 16 * 1024;
    let server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig {
            mode: Some(FrontendMode::Reactor),
            reactor: ReactorConfig {
                read_high_water: 4 * 1024,
                max_line_len,
                ..ReactorConfig::default()
            },
        },
    )
    .expect("reactor server binds");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    // Newline-less and just past the cap, so the server consumes every
    // byte (no reset racing the reply) before tripping the violation.
    let blob = vec![b'{'; max_line_len + 64];
    stream.write_all(&blob).expect("write blob");
    let reply = read_until_close(&mut stream);
    assert!(
        reply.contains(r#""error":"bad_request""#),
        "expected bad_request, got: {reply:?}"
    );
    registry.shutdown();
}

#[test]
fn invalid_utf8_line_gets_bad_request_on_both_engines() {
    for mode in [FrontendMode::Reactor, FrontendMode::Legacy] {
        let registry = ModelRegistry::new(quick_config());
        let mut server = Server::bind_with(
            "127.0.0.1:0",
            Arc::clone(&registry),
            ServerConfig {
                mode: Some(mode),
                ..ServerConfig::default()
            },
        )
        .expect("server binds");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(b"{\"op\":\"\xff\xfe\"}\n")
            .expect("write mangled line");
        let reply = read_until_close(&mut stream);
        assert!(
            reply.contains(r#""error":"bad_request""#),
            "{mode:?}: expected bad_request, got: {reply:?}"
        );
        server.shutdown();
        registry.shutdown();
    }
}

#[test]
fn invalid_utf8_json_frame_gets_bad_request_and_conn_survives() {
    let registry = ModelRegistry::new(quick_config());
    let server = reactor_server(Arc::clone(&registry));

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&framing::handshake(1)).expect("handshake");
    let mut hello = [0u8; framing::HANDSHAKE_LEN];
    stream.read_exact(&mut hello).expect("handshake reply");

    let read_frame = |stream: &mut TcpStream| -> Vec<u8> {
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).expect("frame length");
        let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut payload).expect("frame payload");
        payload
    };

    // A JSON frame whose payload is not UTF-8: a typed error, and —
    // frame boundaries being intact — the connection lives on.
    let mut payload = vec![framing::TAG_REQ_JSON];
    payload.extend_from_slice(b"\xff\xfe\xfd");
    stream
        .write_all(&framing::frame(&payload))
        .expect("mangled frame");
    let reply = read_frame(&mut stream);
    assert_eq!(reply[0], framing::TAG_RESP_JSON);
    let body = std::str::from_utf8(&reply[1..]).expect("utf8 reply");
    assert!(
        body.contains(r#""error":"bad_request""#),
        "expected bad_request, got: {body}"
    );

    let mut payload = vec![framing::TAG_REQ_JSON];
    payload.extend_from_slice(br#"{"op":"stats"}"#);
    stream
        .write_all(&framing::frame(&payload))
        .expect("valid frame");
    let reply = read_frame(&mut stream);
    let body = std::str::from_utf8(&reply[1..]).expect("utf8 reply");
    assert!(
        body.contains(r#""ok":true"#),
        "connection must survive a mangled JSON frame, got: {body}"
    );
    registry.shutdown();
}

#[test]
fn legacy_mode_still_serves_ndjson() {
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(12, AlphabetSet::a1()));
    let mut server = Server::bind_with(
        "127.0.0.1:0",
        Arc::clone(&registry),
        ServerConfig {
            mode: Some(FrontendMode::Legacy),
            ..ServerConfig::default()
        },
    )
    .expect("legacy server binds");
    assert_eq!(server.mode(), FrontendMode::Legacy);

    let mut tcp = TcpClient::connect(server.local_addr()).expect("connect");
    let (_, scores) = tcp.predict("m", &probe_input(0)).expect("predict");
    assert_eq!(scores.len(), 4);
    let stats = server.frontend_stats();
    assert_eq!(stats.mode, "legacy");
    assert!(stats.accepted_conns >= 1);
    // Binary handshake against legacy: no reply, the bytes just sit
    // unparsed — the client times out rather than negotiates. (Covered
    // here only as "does not crash the server".)
    drop(tcp);
    server.shutdown();
    registry.shutdown();
}

#[test]
fn shutdown_answers_inflight_then_closes() {
    let registry = ModelRegistry::new(quick_config());
    registry.install("m", compiled_model(13, AlphabetSet::a1()));
    let mut server = reactor_server(Arc::clone(&registry));

    let mut tcp = TcpClient::connect(server.local_addr()).expect("connect");
    tcp.predict("m", &probe_input(1)).expect("warm the path");
    server.shutdown();
    // After shutdown the socket must be closed...
    let err = tcp.predict("m", &probe_input(2)).expect_err("server gone");
    assert!(matches!(
        err.code.as_str(),
        "io" | "bad_response" | "unavailable"
    ));
    // ...and a fresh connect must fail or be torn down immediately.
    registry.shutdown();
}
