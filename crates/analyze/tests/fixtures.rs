//! Fixture-backed tests for the four lint classes: each must flag
//! exactly the marked lines in its violating fixture and nothing in the
//! clean twin — the same contract `analyze --self-check` enforces in CI.

use man_analyze::{lints, self_check, Config, Workspace};
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture(name: &str) -> String {
    std::fs::read_to_string(fixtures_dir().join(name)).expect("fixture readable")
}

#[test]
fn self_check_passes_on_the_checked_in_fixtures() {
    let summary = self_check(&fixtures_dir()).expect("self-check clean");
    assert!(summary.contains("8 fixture checks passed"), "{summary}");
}

#[test]
fn unsafe_audit_flags_each_violation_kind() {
    let src = fixture("unsafe_violating.rs");
    let ws = Workspace::from_sources(&[("crates/fx/src/lib.rs", &src)]);
    let findings = lints::unsafe_audit::run(&ws, &Config::default());
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("crate root lacks")),
        "missing root-gate finding: {messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("unsafe without a // SAFETY:")),
        "missing SAFETY finding: {messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("not on the unsafe allowlist")),
        "missing allowlist finding: {messages:?}"
    );
}

#[test]
fn determinism_lints_respect_the_path_scope() {
    // The same violating source outside the determinism scope produces
    // zero findings — the lints are scoped, not global.
    let src = fixture("determinism_violating.rs");
    let ws = Workspace::from_sources(&[("crates/serve/src/registry.rs", &src)]);
    let findings = lints::determinism::run(&ws, &Config::default());
    assert!(
        findings.is_empty(),
        "out-of-scope file flagged: {findings:?}"
    );
}

#[test]
fn determinism_env_allowlist_is_per_function() {
    // In kernel.rs the env read inside `from_env` is blessed; the one
    // inside `tally` is not.
    let src = fixture("determinism_violating.rs");
    let ws = Workspace::from_sources(&[("crates/core/src/kernel.rs", &src)]);
    let findings = lints::determinism::run(&ws, &Config::default());
    let env_findings: Vec<_> = findings
        .iter()
        .filter(|f| f.message.contains("env read"))
        .collect();
    assert_eq!(env_findings.len(), 1, "{findings:?}");
}

#[test]
fn atomics_audit_ignores_cmp_ordering_and_test_code() {
    let src = concat!(
        "use std::sync::atomic::{AtomicU64, Ordering};\n",
        "pub fn f(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    use super::*;\n",
        "    #[test]\n",
        "    fn probe() {\n",
        "        let c = AtomicU64::new(0);\n",
        "        let _ = c.load(Ordering::Relaxed);\n",
        "    }\n",
        "}\n",
    );
    let ws = Workspace::from_sources(&[("crates/fx/src/x.rs", src)]);
    let findings = lints::atomics::run(&ws, &Config::default());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_order_reports_the_inversion_pair_with_witnesses() {
    let src = fixture("lock_violating.rs");
    let ws = Workspace::from_sources(&[("crates/fx/src/locks.rs", &src)]);
    let findings = lints::lock_order::run(&ws, &Config::default());
    assert_eq!(findings.len(), 1, "{findings:?}");
    let msg = &findings[0].message;
    assert!(msg.contains("potential deadlock"), "{msg}");
    assert!(msg.contains("fx/alpha") && msg.contains("fx/beta"), "{msg}");
    assert!(
        msg.contains("crates/fx/src/locks.rs:"),
        "witness lines missing: {msg}"
    );
}

#[test]
fn lock_order_sees_interprocedural_cycles() {
    // f holds alpha and calls helper; helper locks beta. g holds beta
    // and locks alpha directly. The cycle only exists through the call
    // graph.
    let src = concat!(
        "use std::sync::Mutex;\n",
        "pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }\n",
        "impl S {\n",
        "    pub fn f(&self) -> u32 {\n",
        "        let a = self.alpha.lock().unwrap();\n",
        "        self.helper() + *a\n",
        "    }\n",
        "    fn helper(&self) -> u32 {\n",
        "        let b = self.beta.lock().unwrap();\n",
        "        *b\n",
        "    }\n",
        "    pub fn g(&self) -> u32 {\n",
        "        let b = self.beta.lock().unwrap();\n",
        "        let a = self.alpha.lock().unwrap();\n",
        "        *a + *b\n",
        "    }\n",
        "}\n",
    );
    let ws = Workspace::from_sources(&[("crates/fx/src/locks.rs", src)]);
    let findings = lints::lock_order::run(&ws, &Config::default());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("via helper"), "{findings:?}");
}

#[test]
fn lock_order_statement_temporary_guards_do_not_hold() {
    // `self.q.lock().unwrap().push(..)` releases at the semicolon, so
    // the later beta lock creates no alpha-held edge.
    let src = concat!(
        "use std::sync::Mutex;\n",
        "pub struct S { q: Mutex<Vec<u32>>, beta: Mutex<u32> }\n",
        "impl S {\n",
        "    pub fn f(&self) {\n",
        "        self.q.lock().unwrap().push(1);\n",
        "        let b = self.beta.lock().unwrap();\n",
        "        let _ = *b;\n",
        "    }\n",
        "    pub fn g(&self) {\n",
        "        let b = self.beta.lock().unwrap();\n",
        "        self.q.lock().unwrap().push(*b);\n",
        "    }\n",
        "}\n",
    );
    // f: q is a temporary, so no q->beta edge survives the `;`.
    // g: beta->q is real — but without f's reverse edge there is no
    // cycle, hence no finding.
    let ws = Workspace::from_sources(&[("crates/fx/src/locks.rs", src)]);
    let findings = lints::lock_order::run(&ws, &Config::default());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_order_guard_returning_fn_transfers_to_caller() {
    // lock_cache returns a MutexGuard; the caller holds `caches` while
    // locking `beta`. reverse() locks beta then calls lock_cache —
    // cycle through the transferred guard.
    let src = concat!(
        "use std::sync::{Mutex, MutexGuard};\n",
        "pub struct S { caches: Vec<Mutex<u32>>, beta: Mutex<u32> }\n",
        "impl S {\n",
        "    fn lock_cache(&self, i: usize) -> MutexGuard<'_, u32> {\n",
        "        self.caches[i].lock().unwrap()\n",
        "    }\n",
        "    pub fn forward(&self) -> u32 {\n",
        "        let c = self.lock_cache(0);\n",
        "        let b = self.beta.lock().unwrap();\n",
        "        *c + *b\n",
        "    }\n",
        "    pub fn reverse(&self) -> u32 {\n",
        "        let b = self.beta.lock().unwrap();\n",
        "        let c = self.lock_cache(1);\n",
        "        *c + *b\n",
        "    }\n",
        "}\n",
    );
    let ws = Workspace::from_sources(&[("crates/fx/src/locks.rs", src)]);
    let findings = lints::lock_order::run(&ws, &Config::default());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("fx/caches") && findings[0].message.contains("fx/beta"),
        "{findings:?}"
    );
}

#[test]
fn lock_order_annotation_suppresses_a_site() {
    let src = concat!(
        "use std::sync::Mutex;\n",
        "pub struct S { alpha: Mutex<u32>, beta: Mutex<u32> }\n",
        "impl S {\n",
        "    pub fn forward(&self) -> u32 {\n",
        "        let a = self.alpha.lock().unwrap();\n",
        "        let b = self.beta.lock().unwrap();\n",
        "        *a + *b\n",
        "    }\n",
        "    pub fn backward(&self) -> u32 {\n",
        "        let b = self.beta.lock().unwrap();\n",
        "        // LOCK-ORDER: provably unreachable while forward runs (doc'd invariant).\n",
        "        let a = self.alpha.lock().unwrap();\n",
        "        *a + *b\n",
        "    }\n",
        "}\n",
    );
    let ws = Workspace::from_sources(&[("crates/fx/src/locks.rs", src)]);
    let findings = lints::lock_order::run(&ws, &Config::default());
    assert!(findings.is_empty(), "{findings:?}");
}
