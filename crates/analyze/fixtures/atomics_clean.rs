//! Clean twin for the atomic-ordering audit: self-documenting orderings
//! and a justified Relaxed.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}

pub fn consume(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}

/// Statistics counter.
///
/// ORDERING: relaxed is enough — the counter is monotonic and read
/// only for reporting, never to synchronize memory.
pub fn count(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}
