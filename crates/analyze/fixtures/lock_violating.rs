//! Violating twin for the lock-order analysis: two functions acquire
//! the same pair of mutexes in opposite orders (A->B and B->A), the
//! textbook lock-order-inversion deadlock.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *a + *b
    }
}
