//! Clean twin for the determinism lints: ordered collections, integer
//! accumulation, and the one blessed env read site.
use std::collections::BTreeMap;

pub fn tally(keys: &[u32]) -> u64 {
    let mut seen: BTreeMap<u32, ()> = BTreeMap::new();
    for k in keys {
        seen.insert(*k, ());
    }
    let mut acc: u64 = 0;
    acc += keys.len() as u64;
    seen.len() as u64 + acc
}

pub fn from_env() -> Option<String> {
    std::env::var("MAN_KERNEL").ok()
}

// DETERMINISM: reporting-only energy estimate; never feeds the MAC
// datapath or any bit-identical artifact.
pub fn energy_estimate(ops: u64) -> f64 {
    let mut fj = 0.0f64;
    fj += ops as f64 * 0.4;
    fj
}
