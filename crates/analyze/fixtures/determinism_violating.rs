use std::collections::HashMap; //~ determinism
use std::time::Instant; //~ determinism

pub fn tally(keys: &[u32]) -> u64 {
    let mut seen = HashMap::new(); //~ determinism
    for k in keys {
        seen.insert(*k, ());
    }
    let t = Instant::now(); //~ determinism
    let mut acc = 0.0f64;
    acc += keys.len() as f64; //~ determinism
    let kernel = std::env::var("MAN_KERNEL").map(|_| 0).unwrap_or(0); //~ determinism
    seen.len() as u64 + acc as u64 + t.elapsed().as_secs() + kernel
}

pub fn from_env() -> Option<String> {
    std::env::var("MAN_KERNEL").ok()
}

// DETERMINISM: keyed lookup only; this map is never iterated.
pub fn keyed(map: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    map.get(&k).copied()
}
