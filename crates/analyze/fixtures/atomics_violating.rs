use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed) //~ atomics
}

pub fn probe(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) //~ atomics
}

pub fn justified(c: &AtomicU64) -> u64 {
    // ORDERING: monotonic counter; no memory is published through it.
    c.load(Ordering::Relaxed)
}

pub fn cmp_ordering_is_not_an_atomic(a: u32, b: u32) -> std::cmp::Ordering {
    a.cmp(&b)
}
