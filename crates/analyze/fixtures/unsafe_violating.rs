// Violating twin for the unsafe audit: no crate-level gate at all. //~ unsafe
pub fn raw_view(v: &[u32]) -> u64 {
    unsafe { v.as_ptr().cast::<u64>().read_unaligned() } //~ unsafe
}

#[allow(unsafe_code)] //~ unsafe
pub fn scoped_allow_off_the_allowlist() {}

pub fn justified(v: &[u32]) -> u32 {
    // SAFETY: the pointer is derived from a live slice and read in bounds.
    unsafe { *v.as_ptr() }
}
