//! Clean twin for the unsafe audit: crate-level deny, a scoped allow in
//! an allowlisted file, and every unsafe justified.
#![deny(unsafe_code)]

/// Reads the first element through a raw pointer.
///
/// # Safety
///
/// The caller guarantees `v` is non-empty.
#[allow(unsafe_code)]
pub fn head(v: &[u32]) -> u32 {
    // SAFETY: non-empty per the documented contract above.
    unsafe { *v.as_ptr() }
}

pub fn safe_path(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}
