//! Clean twin for the lock-order analysis: every path acquires alpha
//! before beta, and the one textually-reversed path releases its guard
//! with `drop` before taking the next lock.
use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn also_forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a * *b
    }

    pub fn reversed_but_released(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        let vb = *b;
        drop(b);
        let a = self.alpha.lock().unwrap();
        vb + *a
    }
}
