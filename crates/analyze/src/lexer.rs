//! A lightweight Rust lexer: just enough tokenization for line-anchored
//! lints, with none of `syn`/`quote` (the vendor policy forbids proc-macro
//! infrastructure, and the lints only need token kinds and line numbers).
//!
//! The hard part of lexing Rust for a linter is not the grammar — it is
//! making sure that a `HashMap` inside a string literal, a `// SAFETY:`
//! inside a raw string, or an `unsafe` inside a comment can never
//! confuse a lint. So the lexer's one job is to classify every byte of
//! the file into exactly one of: comment, string/char literal, number,
//! identifier, punctuation — with correct handling of the constructs
//! that break naive scanners:
//!
//! * nested block comments (`/* a /* b */ c */` is ONE comment);
//! * raw strings with arbitrary hash fences (`r#"..."#`, `r##"..."##`),
//!   including raw byte strings (`br#"..."#`);
//! * raw identifiers (`r#fn` is an identifier, not a raw string);
//! * char literals vs lifetimes (`'a'` vs `'a`), including `'"'`, `'{'`
//!   and escapes like `'\''`;
//! * floats vs ranges (`1.5` is one float; `0..n` is int-punct-punct).
//!
//! Every token carries its 1-based start line and column, so lints can
//! anchor findings and look up nearby comments without drift.

/// What a token is. Comments are tokens too — the annotation lints
/// (`// SAFETY:`, `// ORDERING:`, `// DETERMINISM:`) read them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// A plain identifier or keyword (`fn`, `unsafe`, `HashMap`, ...).
    Ident,
    /// A raw identifier (`r#fn`); `text` holds the part after `r#`.
    RawIdent,
    /// A lifetime (`'a`, `'static`); `text` holds the part after `'`.
    Lifetime,
    /// An integer literal (including its suffix, e.g. `42u64`).
    Int,
    /// A float literal (`1.5`, `2.0e-3`, `1f64`).
    Float,
    /// A `"..."` string literal (text excludes the quotes).
    Str,
    /// A raw string literal (`r"..."`, `r#"..."#`).
    RawStr,
    /// A byte-string literal (`b"..."`, `br#"..."#`).
    ByteStr,
    /// A char literal (`'x'`, `'\''`, `'"'`).
    Char,
    /// A byte literal (`b'x'`).
    Byte,
    /// A single punctuation character. Multi-char operators arrive as
    /// adjacent tokens (`+=` is `+` then `=` with consecutive columns).
    Punct,
    /// A `//` comment; `text` is the body after the slashes (so doc
    /// comments keep their extra `/` or `!` as the first char).
    LineComment,
    /// A `/* */` comment (nesting handled); `text` is the body between
    /// the outermost delimiters, newlines preserved.
    BlockComment,
}

/// One lexed token with its anchor position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in chars) of the token's first character.
    pub col: usize,
    /// The token text (see the kind docs for what is included).
    pub text: String,
}

impl Token {
    /// `true` for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// `true` when this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// `true` when this is an identifier with exactly this text (raw
    /// identifiers compare by their unprefixed name).
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self.kind, TokenKind::Ident | TokenKind::RawIdent) && self.text == s
    }
}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    src: std::marker::PhantomData<&'a str>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool, out: &mut String) {
        while let Some(c) = self.peek(0) {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes a Rust source file into a flat token stream (comments
/// included). The lexer never fails: unterminated literals are closed at
/// end of file, and any byte it cannot classify becomes punctuation —
/// a linter must keep going where a compiler would stop.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        let tok = |kind, text| Token {
            kind,
            line,
            col,
            text,
        };
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                cur.eat_while(|c| c != '\n', &mut text);
                out.push(tok(TokenKind::LineComment, text));
            }
            '/' if cur.peek(1) == Some('*') => {
                cur.bump();
                cur.bump();
                let mut text = String::new();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push('/');
                            text.push('*');
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                            if depth > 0 {
                                text.push('*');
                                text.push('/');
                            }
                        }
                        (Some(ch), _) => {
                            text.push(ch);
                            cur.bump();
                        }
                        (None, _) => break, // unterminated: close at EOF
                    }
                }
                out.push(tok(TokenKind::BlockComment, text));
            }
            '"' => {
                cur.bump();
                out.push(tok(TokenKind::Str, lex_quoted(&mut cur, '"')));
            }
            '\'' => {
                cur.bump();
                out.push(lex_quote_tail(&mut cur, line, col));
            }
            'r' if matches!(cur.peek(1), Some('"') | Some('#')) => {
                if let Some(t) = try_raw_string(&mut cur, TokenKind::RawStr, 1, line, col) {
                    out.push(t);
                } else if cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                    cur.bump();
                    cur.bump();
                    let mut text = String::new();
                    cur.eat_while(is_ident_continue, &mut text);
                    out.push(tok(TokenKind::RawIdent, text));
                } else {
                    cur.bump();
                    out.push(tok(TokenKind::Ident, "r".into()));
                }
            }
            'b' if cur.peek(1) == Some('\'') => {
                cur.bump();
                cur.bump();
                let mut t = lex_quote_tail(&mut cur, line, col);
                t.kind = TokenKind::Byte;
                out.push(t);
            }
            'b' if cur.peek(1) == Some('"') => {
                cur.bump();
                cur.bump();
                out.push(tok(TokenKind::ByteStr, lex_quoted(&mut cur, '"')));
            }
            'b' if cur.peek(1) == Some('r') && matches!(cur.peek(2), Some('"') | Some('#')) => {
                if let Some(t) = try_raw_string(&mut cur, TokenKind::ByteStr, 2, line, col) {
                    out.push(t);
                } else {
                    cur.bump();
                    let mut text = String::from("b");
                    cur.eat_while(is_ident_continue, &mut text);
                    out.push(tok(TokenKind::Ident, text));
                }
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                cur.eat_while(is_ident_continue, &mut text);
                out.push(tok(TokenKind::Ident, text));
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_', &mut text);
                let mut kind = TokenKind::Int;
                // `1.5` continues the literal; `0..n` and `x.0.1` do not.
                if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                    kind = TokenKind::Float;
                    text.push('.');
                    cur.bump();
                    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_', &mut text);
                    // Exponent sign: `1.0e-3`.
                    if text.ends_with(['e', 'E']) && matches!(cur.peek(0), Some('+') | Some('-')) {
                        text.push(cur.bump().unwrap_or('-'));
                        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_', &mut text);
                    }
                }
                if text.ends_with("f32") || text.ends_with("f64") {
                    kind = TokenKind::Float;
                }
                out.push(tok(kind, text));
            }
            c => {
                cur.bump();
                out.push(tok(TokenKind::Punct, c.to_string()));
            }
        }
    }
    out
}

/// Consumes a `"`-quoted body (opening quote already consumed),
/// honoring backslash escapes. Returns the body text.
fn lex_quoted(cur: &mut Cursor<'_>, close: char) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(c);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
        } else if c == close {
            cur.bump();
            break;
        } else {
            text.push(c);
            cur.bump();
        }
    }
    text
}

/// Disambiguates what follows a consumed `'`: a char literal (`'x'`,
/// `'\n'`, `'"'`) or a lifetime (`'a`, `'static`).
fn lex_quote_tail(cur: &mut Cursor<'_>, line: usize, col: usize) -> Token {
    let mk = |kind, text: String| Token {
        kind,
        line,
        col,
        text,
    };
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume escape then closing quote.
            let mut text = String::new();
            text.push(cur.bump().unwrap_or('\\'));
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            mk(TokenKind::Char, text)
        }
        Some(c) if is_ident_start(c) && cur.peek(1) != Some('\'') => {
            // Lifetime: ident-start not followed by a closing quote.
            let mut text = String::new();
            cur.eat_while(is_ident_continue, &mut text);
            mk(TokenKind::Lifetime, text)
        }
        Some(c) => {
            // Plain char literal — including `'"'` and `'{'`.
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            mk(TokenKind::Char, c.to_string())
        }
        None => mk(TokenKind::Char, String::new()),
    }
}

/// Attempts to lex a raw (byte) string starting at the current `r` /
/// `br`. Returns `None` without consuming anything when the hashes are
/// not followed by a quote (i.e. it is a raw identifier like `r#match`).
fn try_raw_string(
    cur: &mut Cursor<'_>,
    kind: TokenKind,
    prefix_len: usize,
    line: usize,
    col: usize,
) -> Option<Token> {
    // Count fence hashes after the prefix.
    let mut hashes = 0usize;
    while cur.peek(prefix_len + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(prefix_len + hashes) != Some('"') {
        return None;
    }
    for _ in 0..prefix_len + hashes + 1 {
        cur.bump();
    }
    let mut text = String::new();
    'body: while let Some(c) = cur.peek(0) {
        if c == '"' {
            // A close candidate: `"` followed by `hashes` hashes.
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek(1 + i) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..hashes + 1 {
                    cur.bump();
                }
                break 'body;
            }
        }
        text.push(c);
        cur.bump();
    }
    Some(Token {
        kind,
        line,
        col,
        text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_strings_with_fences_hide_their_contents() {
        // A `// SAFETY:` or `unsafe` inside a raw string must never
        // surface as an ident or comment token.
        let src = r####"let x = r#"unsafe // SAFETY: not a comment"#;"####;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("SAFETY")));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));

        // Double-hash fence with an embedded single-hash close.
        let src2 = r####"r##"inner "# still raw"##"####;
        let toks2 = kinds(src2);
        assert_eq!(toks2.len(), 1);
        assert_eq!(toks2[0].0, TokenKind::RawStr);
        assert_eq!(toks2[0].1, r##"inner "# still raw"##);
    }

    #[test]
    fn nested_block_comments_stay_one_token() {
        let src = "/* outer /* inner */ tail */ fn x() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[0].text, " outer /* inner */ tail ");
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn multiline_block_comment_anchors_at_its_start_line() {
        let src = "a\n/* one\ntwo\nthree */\nb";
        let toks = lex(src);
        assert_eq!(toks[1].kind, TokenKind::BlockComment);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].text, "b");
        assert_eq!(toks[2].line, 5, "lines inside the comment still count");
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = lex("let r#fn = r#struct; r#\"raw\"#");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::RawIdent && t.text == "fn"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::RawIdent && t.text == "struct"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::RawStr && t.text == "raw"));
        assert!(
            lex("r#fn")[0].is_ident("fn"),
            "raw idents compare unprefixed"
        );
    }

    #[test]
    fn char_literals_with_quote_and_brace_do_not_derail() {
        // '"' then '{' then a normal string: if the lexer mistook either
        // char literal for a string opener, `not_a_string` would vanish
        // into a string token.
        let src = "let a = '\"'; let b = '{'; let c = not_a_string;";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "\""));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "{"));
        assert!(toks.iter().any(|t| t.is_ident("not_a_string")));
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn escaped_char_literals_and_lifetimes_disambiguate() {
        let toks = lex(r"fn f<'a>(x: &'a str) { let q = '\''; let n = '\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn floats_versus_ranges() {
        let toks = lex("let a = 1.5; for i in 0..n {} let b = 2.0e-3f64; let c = x.0;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Float && t.text == "1.5"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Float && t.text == "2.0e-3f64"));
        // `0..n`: int 0, two dot puncts.
        let zero = toks
            .iter()
            .position(|t| t.kind == TokenKind::Int && t.text == "0");
        let z = zero.expect("int 0 from the range");
        assert!(toks[z + 1].is_punct('.') && toks[z + 2].is_punct('.'));
        // `x.0`: tuple access stays an int, not a float.
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Int && t.text == "42" || t.text == "0"));
        assert!(toks.iter().any(|t| t.is_ident("n")));
    }

    #[test]
    fn float_suffix_without_dot_is_a_float() {
        let toks = lex("let a = 1f64; let b = 3f32; let c = 7u32;");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Float).count(),
            2
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Int && t.text == "7u32"));
    }

    #[test]
    fn byte_strings_and_byte_literals() {
        let toks = lex(r##"let a = b"bytes"; let b = b'\n'; let c = br#"raw bytes"#;"##);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::ByteStr && t.text == "bytes"));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Byte));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::ByteStr && t.text == "raw bytes"));
    }

    #[test]
    fn compound_operators_arrive_as_adjacent_columns() {
        let toks = lex("acc += 1;");
        let plus = toks.iter().position(|t| t.is_punct('+')).expect("plus");
        assert!(toks[plus + 1].is_punct('='));
        assert_eq!(toks[plus + 1].col, toks[plus].col + 1);
        // `a + -b` is NOT a compound assignment: columns are not adjacent.
        let toks2 = lex("a + -b;");
        let p = toks2.iter().position(|t| t.is_punct('+')).expect("plus");
        assert!(toks2[p + 1].is_punct('-'));
        assert!(toks2[p + 1].col > toks2[p].col + 1);
    }

    #[test]
    fn line_comments_keep_doc_markers_and_positions() {
        let src = "/// # Safety\n//! inner\n// SAFETY: fine\nfn f() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert_eq!(toks[0].text, "/ # Safety");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "! inner");
        assert_eq!(toks[2].text, " SAFETY: fine");
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[3].line, 4);
    }

    #[test]
    fn unterminated_literals_do_not_loop_forever() {
        // A linter must survive malformed input.
        assert!(!lex("let s = \"unterminated").is_empty());
        assert!(!lex("/* unterminated").is_empty());
        assert!(!lex("r#\"unterminated").is_empty());
    }
}
