#![forbid(unsafe_code)]
//! `man-analyze`: the workspace invariant auditor.
//!
//! The compiler proves memory safety; it cannot prove the contracts this
//! reproduction actually rests on — bit-identity of every kernel and
//! shard plan against the sequential reference (DESIGN.md §8/§10), the
//! latch argument that makes the one `man-par` transmute sound (§9), and
//! the absence of lock cycles in the serve tier. This crate audits those
//! contracts statically, with four lint classes:
//!
//! 1. **unsafe audit** — every `unsafe` needs a `// SAFETY:` story and
//!    every crate root must deny unsafe code (scoped `allow`s are
//!    allowlisted per file);
//! 2. **determinism** — bit-identity-critical modules must not reach for
//!    `HashMap`/`HashSet`, float accumulation, `Instant`, or env reads
//!    outside the documented `MAN_KERNEL` dispatch site;
//! 3. **lock-order** — the interprocedural lock acquisition graph across
//!    serve + the session cache must stay acyclic;
//! 4. **atomics** — every `Ordering::Relaxed` needs an `// ORDERING:`
//!    justification.
//!
//! Findings diff against `ANALYZE_BASELINE.json` in the same spirit as
//! the bench regression gates: new findings fail CI, fixed findings
//! require a baseline refresh (`analyze --write-baseline`).

pub mod findings;
pub mod lexer;
pub mod lints;
pub mod model;

use findings::Finding;
use model::SourceFile;
use std::path::{Path, PathBuf};

/// Which files each scoped lint applies to, and which exceptions are
/// blessed. Paths are workspace-relative with `/` separators.
pub struct Config {
    /// Files where the determinism lints apply (bit-identity-critical
    /// modules per DESIGN.md §8/§10).
    pub determinism_scope: Vec<&'static str>,
    /// Files allowed to carry a scoped `#[allow(unsafe_code)]` (each
    /// must still justify every `unsafe` with `// SAFETY:`).
    pub allow_unsafe_files: Vec<&'static str>,
    /// The one blessed env-read site: `(file, callee ident)` — the
    /// `MAN_KERNEL` dispatch function may read the environment.
    pub env_read_allowed: Vec<(&'static str, &'static str)>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            determinism_scope: vec![
                "crates/core/src/engine.rs",
                "crates/core/src/kernel.rs",
                "crates/core/src/asm.rs",
                "crates/core/src/quartet.rs",
                "crates/core/src/fixed.rs",
                "crates/par/src/lib.rs",
                // The observability plane sits on the serving hot path
                // (DESIGN.md §12): its clock reads and env peeks must
                // carry the same justification markers.
                "crates/obs/src/lib.rs",
                "crates/obs/src/flight.rs",
                // The cluster placement function (DESIGN.md §14): the
                // same node set must yield the same ring — and thus
                // the same replica sets — on every router instance, or
                // two routers would disagree about where a model
                // lives.
                "crates/serve/src/cluster/ring.rs",
            ],
            allow_unsafe_files: vec![
                // The §9 latch transmute.
                "crates/par/src/lib.rs",
                // The AVX2 kernel intrinsics (§8 bit-identity proven by
                // the kernel-equivalence CI job).
                "crates/core/src/kernel.rs",
                // The reactor's poll(2) shim (§13): the serve crate's
                // single unsafe expression, one audited syscall.
                "crates/serve/src/reactor/poll.rs",
            ],
            env_read_allowed: vec![
                // Kernel::from_env — the documented MAN_KERNEL dispatch.
                ("crates/par/src/lib.rs", "from_env"),
                ("crates/core/src/kernel.rs", "from_env"),
                // ObsLevel seeding — the documented MAN_OBS dispatch.
                ("crates/obs/src/lib.rs", "level_from_env"),
            ],
        }
    }
}

/// A parsed workspace: every non-vendor source file, lexed and modeled.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `root` for workspace sources: `src/**/*.rs` of the facade
    /// crate and of every `crates/*` member except `crates/vendor/` and
    /// this crate's own `fixtures/`. Files are visited in sorted path
    /// order so findings and reports are stable.
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut paths: Vec<PathBuf> = Vec::new();
        let facade = root.join("src");
        if facade.is_dir() {
            collect_rs(&facade, &mut paths)?;
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .filter(|p| p.file_name().and_then(|n| n.to_str()) != Some("vendor"))
                .collect();
            members.sort();
            for member in members {
                let src = member.join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut paths)?;
                }
            }
        }
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::parse(rel, &text));
        }
        Ok(Self {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Builds a workspace directly from `(rel_path, source)` pairs —
    /// the fixture tests use this to audit snippets without touching
    /// the filesystem layout.
    pub fn from_sources(sources: &[(&str, &str)]) -> Self {
        Self {
            root: PathBuf::new(),
            files: sources
                .iter()
                .map(|(rel, text)| SourceFile::parse(rel.to_string(), text))
                .collect(),
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, out)?;
        } else if entry.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Runs every lint class over the workspace and returns the findings,
/// sorted by (file, line, lint) for stable output.
pub fn run_all(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(lints::unsafe_audit::run(ws, config));
    findings.extend(lints::determinism::run(ws, config));
    findings.extend(lints::lock_order::run(ws, config));
    findings.extend(lints::atomics::run(ws, config));
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.lint, &a.message).cmp(&(&b.file, b.line, &b.lint, &b.message))
    });
    findings
}

/// Runs the fixture suite: each lint class must flag exactly the lines
/// marked `//~ <lint>` in its violating fixture and nothing at all in
/// its clean twin. This is what `analyze --self-check` (and the CI
/// `static-analysis` job) executes — a broken lint fails loudly instead
/// of silently passing the workspace.
pub fn self_check(fixtures_dir: &Path) -> Result<String, String> {
    use std::collections::BTreeSet;
    type Runner = fn(&Workspace, &Config) -> Vec<Finding>;
    let cfg = Config::default();
    let read = |name: &str| -> Result<String, String> {
        std::fs::read_to_string(fixtures_dir.join(name))
            .map_err(|e| format!("cannot read fixture {name}: {e}"))
    };
    let mut checks = 0usize;

    // Marker-based classes: (lint, violating fixture, its mapped path,
    // clean fixture, its mapped path, runner). Mapped paths matter:
    // the determinism lints are path-scoped and the unsafe allowlist is
    // per-file.
    let classes: [(&str, &str, &str, &str, &str, Runner); 3] = [
        (
            "unsafe",
            "unsafe_violating.rs",
            "crates/fx/src/lib.rs",
            "unsafe_clean.rs",
            "crates/par/src/lib.rs",
            lints::unsafe_audit::run,
        ),
        (
            "determinism",
            "determinism_violating.rs",
            "crates/core/src/kernel.rs",
            "determinism_clean.rs",
            "crates/core/src/kernel.rs",
            lints::determinism::run,
        ),
        (
            "atomics",
            "atomics_violating.rs",
            "crates/fx/src/atomics.rs",
            "atomics_clean.rs",
            "crates/fx/src/atomics.rs",
            lints::atomics::run,
        ),
    ];
    for (lint, bad_file, bad_path, clean_file, clean_path, runner) in classes {
        let bad_src = read(bad_file)?;
        let marker = format!("//~ {lint}");
        let expected: BTreeSet<usize> = bad_src
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains(&marker))
            .map(|(i, _)| i + 1)
            .collect();
        if expected.is_empty() {
            return Err(format!("{bad_file}: no `{marker}` markers found"));
        }
        let ws = Workspace::from_sources(&[(bad_path, &bad_src)]);
        let got: BTreeSet<usize> = runner(&ws, &cfg)
            .into_iter()
            .map(|f| f.line as usize)
            .collect();
        if got != expected {
            return Err(format!(
                "{lint}: flagged lines {got:?} in {bad_file}, expected {expected:?}"
            ));
        }
        let clean_src = read(clean_file)?;
        let ws = Workspace::from_sources(&[(clean_path, &clean_src)]);
        let clean_findings = runner(&ws, &cfg);
        if !clean_findings.is_empty() {
            return Err(format!(
                "{lint}: clean twin {clean_file} produced findings: {clean_findings:?}"
            ));
        }
        checks += 2;
    }

    // Lock-order: the cycle finding is whole-file (line 0), so assert
    // on content instead of marker lines.
    let bad_src = read("lock_violating.rs")?;
    let ws = Workspace::from_sources(&[("crates/fx/src/locks.rs", &bad_src)]);
    let got = lints::lock_order::run(&ws, &cfg);
    if got.len() != 1 || !got[0].message.contains("fx/alpha") || !got[0].message.contains("fx/beta")
    {
        return Err(format!(
            "lock-order: expected one alpha/beta cycle finding, got {got:?}"
        ));
    }
    let clean_src = read("lock_clean.rs")?;
    let ws = Workspace::from_sources(&[("crates/fx/src/locks.rs", &clean_src)]);
    let clean_findings = lints::lock_order::run(&ws, &cfg);
    if !clean_findings.is_empty() {
        return Err(format!(
            "lock-order: clean twin produced findings: {clean_findings:?}"
        ));
    }
    checks += 2;

    Ok(format!("{checks} fixture checks passed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_from_sources_parses_every_file() {
        let ws =
            Workspace::from_sources(&[("a.rs", "fn main() {}"), ("b.rs", "// just a comment\n")]);
        assert_eq!(ws.files.len(), 2);
        assert_eq!(ws.files[0].rel_path, "a.rs");
    }

    #[test]
    fn default_config_scopes_are_consistent() {
        let cfg = Config::default();
        for f in &cfg.allow_unsafe_files {
            assert!(f.ends_with(".rs"), "allowlist entries are files: {f}");
        }
        assert!(cfg.determinism_scope.contains(&"crates/par/src/lib.rs"));
    }
}
