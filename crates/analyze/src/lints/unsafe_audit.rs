//! Lint class 1: the unsafe audit.
//!
//! Three rules:
//!
//! * every `unsafe` keyword in non-test code must carry a `// SAFETY:`
//!   justification (or a `# Safety` doc section on the enclosing fn) —
//!   the §9 latch transmute and the AVX2 kernels set the precedent:
//!   an unsafe block is only as sound as its written argument;
//! * every crate root (`lib.rs` / `main.rs` / `src/bin/*.rs`) must
//!   carry `#![deny(unsafe_code)]` or `#![forbid(unsafe_code)]`, so
//!   new unsafe cannot appear without a deliberate, reviewable opt-out;
//! * a scoped `#[allow(unsafe_code)]` may only appear in files on the
//!   config allowlist (today: the `man-par` latch transmute, the
//!   AVX2 kernel module, and the `man-serve` poll(2) shim).

use crate::findings::Finding;
use crate::{Config, Workspace};

pub const LINT: &str = "unsafe";

pub fn run(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for sf in &ws.files {
        let is_crate_root = sf.rel_path.ends_with("/lib.rs")
            || sf.rel_path == "src/lib.rs"
            || sf.rel_path.ends_with("/main.rs")
            || sf.rel_path.contains("/src/bin/");

        // Rule 2: crate roots must deny unsafe code.
        if is_crate_root && !has_crate_level_unsafe_gate(sf) {
            out.push(Finding::new(
                LINT,
                &sf.rel_path,
                1,
                "crate root lacks #![deny(unsafe_code)] or #![forbid(unsafe_code)]".to_string(),
            ));
        }

        let toks: Vec<_> = sf.code_tokens().map(|(_, t)| t).collect();
        for (i, t) in toks.iter().enumerate() {
            // Rule 1: `unsafe` needs a SAFETY story.
            if t.is_ident("unsafe")
                && !sf.in_test_code(t.line)
                && !sf.has_marker(t.line, &["SAFETY:", "# Safety"])
            {
                out.push(Finding::new(
                    LINT,
                    &sf.rel_path,
                    t.line,
                    "unsafe without a // SAFETY: justification".to_string(),
                ));
            }
            // Rule 3: scoped allow(unsafe_code) must be allowlisted.
            if t.is_ident("allow")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("unsafe_code"))
                && !config.allow_unsafe_files.contains(&sf.rel_path.as_str())
            {
                out.push(Finding::new(
                    LINT,
                    &sf.rel_path,
                    t.line,
                    "#[allow(unsafe_code)] in a file not on the unsafe allowlist".to_string(),
                ));
            }
        }
    }
    out
}

/// Looks for `#![deny(unsafe_code)]` / `#![forbid(unsafe_code)]`
/// anywhere in the file (crate-root inner attributes sit at the top,
/// but position is not load-bearing for the guarantee).
fn has_crate_level_unsafe_gate(sf: &crate::model::SourceFile) -> bool {
    let toks: Vec<_> = sf.code_tokens().map(|(_, t)| t).collect();
    toks.windows(6).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && (w[3].is_ident("deny") || w[3].is_ident("forbid"))
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
    })
}
