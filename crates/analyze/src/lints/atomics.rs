//! Lint class 4: the atomic-ordering audit.
//!
//! `Ordering::Relaxed` is the one memory ordering whose correctness is
//! never local: it is only sound when some *other* mechanism provides
//! the visibility the atomic itself gives up (a latch's Acquire/Release
//! pair, a value-based benign race over a pure function, a monotonic
//! counter nobody reads for synchronization). That argument lives in
//! the author's head unless it is written down — so every `Relaxed` in
//! non-test code must carry an `// ORDERING:` comment (same line,
//! block above, or fn-level) stating why relaxed is enough.
//!
//! `SeqCst`/`Acquire`/`Release` are not flagged: they are the safe,
//! self-documenting defaults. Note `std::cmp::Ordering` never matches —
//! the pattern requires the literal `Ordering::Relaxed` path.

use crate::findings::Finding;
use crate::{Config, Workspace};

pub const LINT: &str = "atomics";

pub fn run(ws: &Workspace, _config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for sf in &ws.files {
        let toks: Vec<_> = sf.code_tokens().map(|(_, t)| t).collect();
        for w in toks.windows(4) {
            if w[0].is_ident("Ordering")
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && w[3].is_ident("Relaxed")
                && !sf.in_test_code(w[0].line)
                && !sf.has_marker(w[0].line, &["ORDERING:"])
            {
                out.push(Finding::new(
                    LINT,
                    &sf.rel_path,
                    w[0].line,
                    "Ordering::Relaxed without an // ORDERING: justification".to_string(),
                ));
            }
        }
    }
    out
}
