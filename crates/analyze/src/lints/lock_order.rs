//! Lint class 3: interprocedural lock-order analysis.
//!
//! Deadlock by lock-order inversion is the one concurrency bug the
//! serve tier can ship without any test noticing: registry, metrics
//! and batcher each own locks, sessions own a sharded cache lock, and
//! a future PR that calls "one harmless method" while holding the
//! wrong guard creates a cycle that only fires under production
//! interleavings. This pass makes the acquisition *graph* a checked
//! artifact:
//!
//! 1. **Acquisition sites** — `recv.lock()`, `recv.read()`,
//!    `recv.write()` with *empty* argument lists (a lock acquisition
//!    never takes arguments, which screens out `io::Read::read(&mut
//!    buf)`-style calls). The lock's identity is `crate/receiver` —
//!    field names are unique enough per crate in this workspace.
//! 2. **Guard liveness** — a guard chained straight into
//!    `unwrap`/`expect`/`unwrap_or_else` and bound by `let` lives to
//!    the end of its enclosing block; a guard consumed further in the
//!    same statement (`.clone()`, `.insert(..)`) dies at the `;`; a
//!    guard inside `drop(...)` dies immediately; `drop(name)` releases
//!    a named binding early.
//! 3. **Interprocedural edges** — calls are resolved by name against
//!    the set of workspace functions that (transitively) acquire
//!    locks; calling `g` while holding `L` adds edges `L -> every lock
//!    g can acquire`. Functions *returning* a guard (a
//!    `MutexGuard`/`RwLock*Guard` in the signature, e.g. the session
//!    `lock_cache`) transfer their acquisition to the caller instead.
//!    `wait` is never resolved (`Condvar::wait(guard)` would collide
//!    with any workspace `wait` and manufacture self-cycles).
//! 4. **Cycles** — strongly connected components of the edge graph
//!    with more than one lock (or a self-edge) are findings. An
//!    `// LOCK-ORDER:` comment on an acquisition site excludes it,
//!    for inversions that are provably unreachable.
//!
//! The analysis is deliberately conservative (block-scoped liveness is
//! an over-approximation of NLL; name resolution unions ambiguous
//! callees) — a reported cycle is "order these locks or prove it
//! can't happen", not necessarily a reproducible hang.

use crate::findings::Finding;
use crate::model::SourceFile;
use crate::{Config, Workspace};
use std::collections::{BTreeMap, BTreeSet};

pub const LINT: &str = "lock-order";

/// Method names that are never resolved to workspace functions.
/// `wait` collides with `Condvar::wait(guard)`; the rest are std-trait
/// names too generic to resolve by name.
const NO_RESOLVE: &[&str] = &[
    "wait", "lock", "read", "write", "drop", "clone", "fmt", "next", "get", "insert", "remove",
    "push", "pop", "len", "iter",
];

/// One event observed while scanning a function body, in source order.
#[derive(Debug)]
enum Event {
    /// Acquired `lock` at `line`; the set of locks already held at
    /// that moment is reconstructed during the scan.
    Acquire {
        lock: String,
        line: usize,
        held: Vec<String>,
    },
    /// Called a resolvable function while holding `held`.
    Call {
        callee: String,
        line: usize,
        held: Vec<String>,
    },
}

/// Per-function analysis summary.
#[derive(Debug, Default)]
struct FnInfo {
    file: String,
    events: Vec<Event>,
    /// Locks this fn acquires directly (annotation-suppressed sites
    /// excluded).
    direct: BTreeSet<String>,
    /// Whether the signature returns a guard (MutexGuard / RwLock
    /// guards) — its acquisitions transfer to the caller.
    returns_guard: bool,
}

/// Renders the full acquisition graph (`analyze --lock-graph`): every
/// edge with its witness, plus each function's transitive lock set.
/// This is the evidence trail for auditing a reported cycle — and for
/// writing the lock-order section of DESIGN.md §11.
pub fn dump_graph(ws: &Workspace, config: &Config) -> String {
    let (edges, totals) = build_graph(ws, config);
    if std::env::var("ANALYZE_DEBUG_CALLS").is_ok() {
        return dump_calls(ws, config);
    }
    let mut out = String::new();
    out.push_str("lock acquisition edges (held -> acquired @ witness):\n");
    for ((a, b), w) in &edges {
        out.push_str(&format!("  {a} -> {b} @ {w}\n"));
    }
    out.push_str("transitive lock sets per function:\n");
    for (name, locks) in &totals {
        if !locks.is_empty() {
            let list: Vec<&str> = locks.iter().map(|s| s.as_str()).collect();
            out.push_str(&format!("  {name}: {}\n", list.join(", ")));
        }
    }
    out
}

pub fn run(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let (edges, _totals) = build_graph(ws, config);
    findings_from_edges(&edges)
}

/// Debug view (ANALYZE_DEBUG_CALLS=1 with --lock-graph): each fn's
/// direct lock set and resolved callees.
fn dump_calls(ws: &Workspace, config: &Config) -> String {
    let (_, _) = (ws, config);
    let mut guard_fns = BTreeSet::new();
    for sf in &ws.files {
        for f in &sf.fns {
            if f.is_test {
                continue;
            }
            let sig = &sf.tokens[f.sig_start_tok..f.body_open_tok.min(sf.tokens.len())];
            if sig.iter().any(|t| {
                t.is_ident("MutexGuard")
                    || t.is_ident("RwLockReadGuard")
                    || t.is_ident("RwLockWriteGuard")
            }) {
                guard_fns.insert(f.name.clone());
            }
        }
    }
    let mut out = String::new();
    for sf in &ws.files {
        for f in &sf.fns {
            if f.is_test || f.body_open_tok >= f.body_close_tok {
                continue;
            }
            let info = scan_fn(sf, f, &guard_fns);
            let direct: Vec<&str> = info.direct.iter().map(|s| s.as_str()).collect();
            let calls: Vec<String> = info
                .events
                .iter()
                .filter_map(|e| match e {
                    Event::Call { callee, .. } => Some(callee.clone()),
                    _ => None,
                })
                .collect();
            if !direct.is_empty() || !calls.is_empty() {
                out.push_str(&format!(
                    "{} ({}): direct=[{}] calls=[{}]\n",
                    f.name,
                    sf.rel_path,
                    direct.join(","),
                    calls.join(",")
                ));
            }
        }
    }
    out
}

type LockGraph = (
    BTreeMap<(String, String), String>,
    BTreeMap<String, BTreeSet<String>>,
);

fn build_graph(ws: &Workspace, _config: &Config) -> LockGraph {
    // Pass A: signatures — which fn names return guards, and how many
    // times each name is defined. Calls only resolve to names defined
    // EXACTLY once: a name like `load` (five definitions across serve,
    // the facade, and bench) cannot be attributed by a token-level
    // analysis, and a conservative union would smear one definition's
    // lock set over every caller of the others, manufacturing cycles.
    // Unresolved calls are simply dropped (an under-approximation,
    // documented in DESIGN.md §11).
    let mut guard_fns: BTreeSet<String> = BTreeSet::new();
    let mut defined: BTreeMap<String, usize> = BTreeMap::new();
    for sf in &ws.files {
        for f in &sf.fns {
            if f.is_test {
                continue;
            }
            if f.body_open_tok < f.body_close_tok {
                *defined.entry(f.name.clone()).or_insert(0) += 1;
            }
            let sig = &sf.tokens[f.sig_start_tok..f.body_open_tok.min(sf.tokens.len())];
            if sig.iter().any(|t| {
                t.is_ident("MutexGuard")
                    || t.is_ident("RwLockReadGuard")
                    || t.is_ident("RwLockWriteGuard")
            }) {
                guard_fns.insert(f.name.clone());
            }
        }
    }
    // Guard transfer is name-based too, so it obeys the same rule.
    guard_fns.retain(|n| defined.get(n).copied() == Some(1));
    let unique = |name: &str| defined.get(name).copied() == Some(1);

    // Pass B: scan every non-test fn body for acquisition/call events.
    let mut fns: BTreeMap<String, FnInfo> = BTreeMap::new();
    for sf in &ws.files {
        for f in &sf.fns {
            if f.is_test || f.body_open_tok >= f.body_close_tok {
                continue;
            }
            let info = scan_fn(sf, f, &guard_fns);
            let entry = fns.entry(f.name.clone()).or_default();
            if entry.file.is_empty() {
                entry.file = sf.rel_path.clone();
            }
            entry.direct.extend(info.direct.iter().cloned());
            entry.returns_guard |= info.returns_guard;
            entry.events.extend(info.events);
        }
    }

    // Fixpoint: total lock set each fn can (transitively) acquire.
    let mut total: BTreeMap<String, BTreeSet<String>> = fns
        .iter()
        .map(|(name, info)| (name.clone(), info.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        for (name, info) in &fns {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for ev in &info.events {
                if let Event::Call { callee, .. } = ev {
                    if !unique(callee) {
                        continue;
                    }
                    if let Some(t) = total.get(callee) {
                        add.extend(t.iter().cloned());
                    }
                }
            }
            let mine = total.get_mut(name).expect("fn name present");
            let before = mine.len();
            mine.extend(add);
            changed |= mine.len() != before;
        }
        if !changed {
            break;
        }
    }

    // A held id of the form `guard:NAME` is the synthetic hold a call
    // to a guard-returning fn creates; it expands to that fn's direct
    // lock set.
    let expand = |h: &str| -> Vec<String> {
        match h.strip_prefix("guard:") {
            Some(name) => fns
                .get(name)
                .map(|i| i.direct.iter().cloned().collect())
                .unwrap_or_default(),
            None => vec![h.to_string()],
        }
    };

    // Edge construction: (from, to) -> deterministic witness.
    let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, witness: String| {
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert(witness);
    };
    for info in fns.values() {
        for ev in &info.events {
            match ev {
                Event::Acquire { lock, line, held } => {
                    for h in held.iter().flat_map(|h| expand(h)) {
                        add_edge(&h, lock, format!("{}:{}", info.file, line));
                    }
                }
                Event::Call { callee, line, held } => {
                    if !unique(callee) {
                        continue;
                    }
                    if let Some(t) = total.get(callee) {
                        for h in held.iter().flat_map(|h| expand(h)) {
                            for l in t {
                                add_edge(&h, l, format!("{}:{} (via {})", info.file, line, callee));
                            }
                        }
                    }
                }
            }
        }
    }

    (edges, total)
}

/// Cycle detection over the lock graph (iterative Tarjan SCC) plus
/// self-edge reporting.
fn findings_from_edges(edges: &BTreeMap<(String, String), String>) -> Vec<Finding> {
    let nodes: Vec<String> = edges
        .keys()
        .flat_map(|(a, b)| [a.clone(), b.clone()])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let index_of: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in edges.keys() {
        if a != b {
            adj[index_of[a.as_str()]].push(index_of[b.as_str()]);
        }
    }
    let sccs = tarjan(&adj);

    let mut out = Vec::new();
    // Self-edges are cycles of length one.
    for ((a, b), witness) in edges {
        if a == b {
            out.push(Finding::new(
                LINT,
                witness.split(':').next().unwrap_or(""),
                witness
                    .split(':')
                    .nth(1)
                    .and_then(|s| s.split(' ').next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0),
                format!("lock {a} re-acquired while already held (self-deadlock risk)"),
            ));
        }
    }
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        let mut names: Vec<&str> = scc.iter().map(|&i| nodes[i].as_str()).collect();
        names.sort_unstable();
        // Witnesses: every edge inside the SCC, sorted.
        let mut witnesses: Vec<String> = edges
            .iter()
            .filter(|((a, b), _)| names.contains(&a.as_str()) && names.contains(&b.as_str()))
            .map(|((a, b), w)| format!("{a} -> {b} at {w}"))
            .collect();
        witnesses.sort();
        let anchor_file = witnesses
            .first()
            .and_then(|w| w.split(" at ").nth(1))
            .and_then(|w| w.split(':').next())
            .unwrap_or("")
            .to_string();
        out.push(Finding::new(
            LINT,
            &anchor_file,
            0,
            format!(
                "potential deadlock: lock cycle {{{}}}; {}",
                names.join(", "),
                witnesses.join("; ")
            ),
        ));
    }
    out
}

/// Scans one fn body, reconstructing the held-lock set as it goes.
fn scan_fn(sf: &SourceFile, f: &crate::model::FnSpan, guard_fns: &BTreeSet<String>) -> FnInfo {
    let krate = sf.crate_name().to_string();
    let mut info = FnInfo {
        file: sf.rel_path.clone(),
        returns_guard: guard_fns.contains(&f.name),
        ..FnInfo::default()
    };

    // Code tokens inside the body, with original indices dropped — we
    // work positionally on this slice.
    let toks: Vec<&crate::lexer::Token> = sf.tokens[f.body_open_tok + 1..f.body_close_tok]
        .iter()
        .filter(|t| !t.is_comment())
        .collect();

    /// A guard currently held in this fn.
    struct Held {
        lock: String,
        /// Brace depth at binding; released when depth drops below.
        depth: usize,
        /// Released at the next `;` when not let-bound.
        until_semi: bool,
        /// `let` binding name, for `drop(name)` release.
        binding: Option<String>,
    }
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;

    // Statement tracking: is the current statement a `let`, and what
    // name does it bind?
    let mut stmt_is_let = false;
    let mut stmt_binding: Option<String> = None;
    let mut expect_binding = false;

    let held_ids = |held: &[Held]| -> Vec<String> {
        let mut ids: Vec<String> = held.iter().map(|h| h.lock.clone()).collect();
        ids.sort();
        ids.dedup();
        ids
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            held.retain(|h| h.depth <= depth);
        } else if t.is_punct(';') {
            held.retain(|h| !h.until_semi);
            stmt_is_let = false;
            stmt_binding = None;
            expect_binding = false;
        } else if t.is_ident("let") {
            stmt_is_let = true;
            stmt_binding = None;
            expect_binding = true;
        } else if expect_binding
            && matches!(
                t.kind,
                crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
            )
        {
            if t.text != "mut" {
                stmt_binding = Some(t.text.clone());
                expect_binding = false;
            }
        } else if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            // `drop(name)` releases the binding early.
            if let Some(name) = toks.get(i + 2) {
                held.retain(|h| h.binding.as_deref() != Some(name.text.as_str()));
            }
        }

        // Acquisition: `. lock|read|write ( )` — empty args only.
        let is_acq = t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|m| m.is_ident("lock") || m.is_ident("read") || m.is_ident("write"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'));
        if is_acq {
            let line = toks[i + 1].line;
            let suppressed = sf.has_marker(line, &["LOCK-ORDER:"]);
            if let Some(recv) = receiver_name(&toks, i) {
                if !suppressed {
                    let lock = format!("{krate}/{recv}");
                    info.direct.insert(lock.clone());
                    info.events.push(Event::Acquire {
                        lock: lock.clone(),
                        line,
                        held: held_ids(&held),
                    });
                    // Liveness: inside drop(..)? chained past
                    // unwrap/expect? let-bound?
                    let (lives_to_block, immediate) = guard_liveness(&toks, i + 3, stmt_is_let);
                    if !immediate {
                        held.push(Held {
                            lock,
                            depth,
                            until_semi: !lives_to_block,
                            binding: if lives_to_block {
                                stmt_binding.clone()
                            } else {
                                None
                            },
                        });
                    }
                }
                i += 4;
                continue;
            }
        }

        // Call: `name (` where name is resolvable. Skip declarations
        // (`fn name(`) and the NO_RESOLVE stoplist.
        if matches!(
            t.kind,
            crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
        ) && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !NO_RESOLVE.contains(&t.text.as_str())
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            if guard_fns.contains(&t.text) {
                // Calling a guard-returning fn: the caller now holds
                // whatever it locks (e.g. `let g = self.lock_cache(i)`).
                // The lock id is resolved at graph-build time via the
                // callee's direct set; here we record the call and a
                // synthetic hold using the callee name as a marker that
                // graph construction expands.
                info.events.push(Event::Call {
                    callee: t.text.clone(),
                    line: t.line,
                    held: held_ids(&held),
                });
                held.push(Held {
                    lock: format!("guard:{}", t.text),
                    depth,
                    until_semi: !stmt_is_let,
                    binding: stmt_binding.clone(),
                });
            } else {
                info.events.push(Event::Call {
                    callee: t.text.clone(),
                    line: t.line,
                    held: held_ids(&held),
                });
            }
        }
        i += 1;
    }
    info
}

/// Walks back from the `.` of `.lock()` to name the receiver:
/// `self.queue.lock()` → `queue`; `self.caches[i & m].lock()` →
/// `caches`; `guard_var.lock()` → `guard_var`.
fn receiver_name(toks: &[&crate::lexer::Token], dot: usize) -> Option<String> {
    let mut j = dot;
    // Step over a closing bracket chain: `caches[i]` → position of `[`.
    if j > 0 && toks[j - 1].is_punct(']') {
        let mut bdepth = 1usize;
        j -= 1;
        while j > 0 && bdepth > 0 {
            j -= 1;
            if toks[j].is_punct(']') {
                bdepth += 1;
            } else if toks[j].is_punct('[') {
                bdepth -= 1;
            }
        }
    }
    if j == 0 {
        return None;
    }
    let cand = toks[j - 1];
    if matches!(
        cand.kind,
        crate::lexer::TokenKind::Ident | crate::lexer::TokenKind::RawIdent
    ) && cand.text != "self"
    {
        Some(cand.text.clone())
    } else {
        None
    }
}

/// Classifies the guard produced by the acquisition whose closing `)`
/// sits at `close`: `(lives_to_block_end, immediately_dropped)`.
fn guard_liveness(toks: &[&crate::lexer::Token], close: usize, stmt_is_let: bool) -> (bool, bool) {
    // Chain forward over guard-preserving adaptors.
    let mut j = close + 1;
    loop {
        let is_adapter = toks.get(j).is_some_and(|t| t.is_punct('.'))
            && toks.get(j + 1).is_some_and(|t| {
                t.is_ident("unwrap") || t.is_ident("expect") || t.is_ident("unwrap_or_else")
            })
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('));
        if !is_adapter {
            break;
        }
        // Skip to the matching `)` of the adaptor call.
        let mut pdepth = 0usize;
        let mut k = j + 2;
        while k < toks.len() {
            if toks[k].is_punct('(') {
                pdepth += 1;
            } else if toks[k].is_punct(')') {
                pdepth -= 1;
                if pdepth == 0 {
                    break;
                }
            }
            k += 1;
        }
        j = k + 1;
    }
    match toks.get(j) {
        // Chain ends the statement or expression: a let-bound guard
        // lives to block end; otherwise it is a temporary.
        Some(t) if t.is_punct(';') => (stmt_is_let, false),
        // Chain continues (`.insert(..)`, `.clone()`, `?`): the guard
        // is a statement temporary.
        Some(_) => (false, false),
        None => (stmt_is_let, false),
    }
}

/// Iterative Tarjan strongly-connected components.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // (node, next-child-index)
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, ci)) = call.last() {
            if ci == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                call.last_mut().expect("frame present").1 += 1;
                let w = adj[v][ci];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}
