//! Lint class 2: determinism lints, scoped to the bit-identity-critical
//! modules (DESIGN.md §8/§10 — the kernels, the quartet datapath, the
//! fixed-point plane, the shard engine, and the `man-par` pool).
//!
//! Four sub-lints, each a way nondeterminism sneaks into a numeric
//! pipeline:
//!
//! * **hash-collections** — `HashMap`/`HashSet` iteration order is
//!   randomized per process (SipHash seeding), so any use inside a
//!   bit-identity module is suspect. Keyed-lookup-only uses are fine
//!   but must say so with a `// DETERMINISM:` comment;
//! * **float-accumulation** — `x += <float>` style compound updates
//!   reorder under parallelism and re-association; the MAC datapath is
//!   integer-only by §8, so a float accumulator needs a written reason
//!   (e.g. a reporting-only energy estimate);
//! * **time** — `Instant`/`SystemTime` values must not feed anything
//!   bit-identical (timing belongs in `man-bench`);
//! * **env-reads** — `std::env::var` calls outside the documented
//!   `MAN_KERNEL` dispatch site (`Kernel::from_env`) would let the
//!   environment silently change numeric results.

use crate::findings::Finding;
use crate::lexer::TokenKind;
use crate::{Config, Workspace};

pub const LINT: &str = "determinism";

const MARKER: &[&str] = &["DETERMINISM:"];

pub fn run(ws: &Workspace, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for sf in &ws.files {
        if !config.determinism_scope.contains(&sf.rel_path.as_str()) {
            continue;
        }
        let toks: Vec<_> = sf.code_tokens().map(|(_, t)| t).collect();
        for (i, t) in toks.iter().enumerate() {
            if t.is_comment() || sf.in_test_code(t.line) {
                continue;
            }
            // Hash collections.
            if (t.is_ident("HashMap") || t.is_ident("HashSet")) && !sf.has_marker(t.line, MARKER) {
                out.push(Finding::new(
                    LINT,
                    &sf.rel_path,
                    t.line,
                    format!(
                        "{} in a bit-identity module (iteration order is randomized) without a // DETERMINISM: justification",
                        t.text
                    ),
                ));
            }
            // Time sources.
            if (t.is_ident("Instant") || t.is_ident("SystemTime")) && !sf.has_marker(t.line, MARKER)
            {
                out.push(Finding::new(
                    LINT,
                    &sf.rel_path,
                    t.line,
                    format!(
                        "{} in a bit-identity module without a // DETERMINISM: justification",
                        t.text
                    ),
                ));
            }
            // Env reads: `env :: var` / `env :: var_os` outside the
            // blessed dispatch fn.
            if t.is_ident("env")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks
                    .get(i + 3)
                    .is_some_and(|t| t.is_ident("var") || t.is_ident("var_os"))
            {
                let allowed = sf
                    .enclosing_fn(t.line)
                    .map(|f| {
                        config
                            .env_read_allowed
                            .contains(&(sf.rel_path.as_str(), f.name.as_str()))
                    })
                    .unwrap_or(false);
                if !allowed && !sf.has_marker(t.line, MARKER) {
                    out.push(Finding::new(
                        LINT,
                        &sf.rel_path,
                        t.line,
                        "env read outside the documented MAN_KERNEL dispatch site".to_string(),
                    ));
                }
            }
            // Float accumulation: compound assign (`+=`, `-=`, `*=` as
            // two column-adjacent puncts) whose RHS (up to `;`) contains
            // a float literal or an f32/f64 ident (covers `as f64`).
            let compound = matches!(t.text.as_str(), "+" | "-" | "*")
                && t.kind == TokenKind::Punct
                && toks
                    .get(i + 1)
                    .is_some_and(|n| n.is_punct('=') && n.line == t.line && n.col == t.col + 1);
            if compound {
                let mut rhs_float = false;
                for n in toks.iter().skip(i + 2) {
                    if n.is_punct(';') || n.is_punct('{') {
                        break;
                    }
                    if n.kind == TokenKind::Float || n.is_ident("f32") || n.is_ident("f64") {
                        rhs_float = true;
                        break;
                    }
                }
                if rhs_float && !sf.has_marker(t.line, MARKER) {
                    out.push(Finding::new(
                        LINT,
                        &sf.rel_path,
                        t.line,
                        "float accumulation in a bit-identity module without a // DETERMINISM: justification"
                            .to_string(),
                    ));
                }
            }
        }
    }
    out
}
