//! The four lint classes. Each module exposes
//! `run(&Workspace, &Config) -> Vec<Finding>`; [`crate::run_all`]
//! concatenates and sorts them.

pub mod atomics;
pub mod determinism;
pub mod lock_order;
pub mod unsafe_audit;
