//! Findings, the JSON report, and the baseline gate.
//!
//! The gate works like the bench regression gates (`BENCH_*.json`): a
//! checked-in `ANALYZE_BASELINE.json` pins the accepted findings (the
//! target state is an empty list). A run fails when it surfaces a
//! finding not in the baseline (**new** — fix it or justify it with an
//! annotation) and also when a baselined finding no longer reproduces
//! (**stale** — the code got fixed, so refresh the baseline with
//! `analyze --write-baseline` to ratchet the gate down). Staleness is
//! an error on purpose: a baseline that silently over-approximates
//! would let the same finding creep back unnoticed.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One finding. The tuple (lint, file, line, message) is the identity
/// used for baseline diffing, so messages must be deterministic.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Lint class: `unsafe`, `determinism`, `lock-order`, `atomics`.
    pub lint: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: u64,
    /// Human-readable description, stable across runs.
    pub message: String,
}

impl Finding {
    pub fn new(lint: &str, file: &str, line: usize, message: String) -> Self {
        Self {
            lint: lint.to_string(),
            file: file.to_string(),
            line: line as u64,
            message,
        }
    }

    fn key(&self) -> String {
        format!("{}|{}|{}|{}", self.lint, self.file, self.line, self.message)
    }
}

/// The serialized report / baseline shape.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("findings contain no floats")
    }

    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("bad baseline: {e}"))
    }
}

/// Outcome of diffing current findings against the baseline.
pub struct Diff {
    /// Findings present now but absent from the baseline: gate FAILS.
    pub new: Vec<Finding>,
    /// Baseline entries that no longer reproduce: gate FAILS with a
    /// refresh instruction.
    pub stale: Vec<Finding>,
    /// Findings present in both (accepted debt).
    pub accepted: usize,
}

impl Diff {
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Diffs `current` findings against `baseline` by identity key.
pub fn diff(current: &[Finding], baseline: &[Finding]) -> Diff {
    let base_keys: BTreeSet<String> = baseline.iter().map(|f| f.key()).collect();
    let cur_keys: BTreeSet<String> = current.iter().map(|f| f.key()).collect();
    Diff {
        new: current
            .iter()
            .filter(|f| !base_keys.contains(&f.key()))
            .cloned()
            .collect(),
        stale: baseline
            .iter()
            .filter(|f| !cur_keys.contains(&f.key()))
            .cloned()
            .collect(),
        accepted: current.len()
            - current
                .iter()
                .filter(|f| !base_keys.contains(&f.key()))
                .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(lint: &str, file: &str, line: usize) -> Finding {
        Finding::new(lint, file, line, format!("msg {lint} {line}"))
    }

    #[test]
    fn diff_partitions_new_accepted_stale() {
        let baseline = vec![f("atomics", "a.rs", 10), f("unsafe", "b.rs", 5)];
        let current = vec![f("atomics", "a.rs", 10), f("determinism", "c.rs", 7)];
        let d = diff(&current, &baseline);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].lint, "determinism");
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].lint, "unsafe");
        assert_eq!(d.accepted, 1);
        assert!(!d.is_clean());
        assert!(diff(&baseline, &baseline).is_clean());
    }

    #[test]
    fn report_json_round_trips() {
        let report = Report {
            findings: vec![f("lock-order", "crates/serve/src/registry.rs", 42)],
        };
        let json = report.to_json();
        let back = Report::from_json(&json).expect("round trip");
        assert_eq!(back.findings, report.findings);
    }

    #[test]
    fn empty_baseline_parses() {
        let report = Report::from_json("{\"findings\": []}").expect("empty baseline");
        assert!(report.findings.is_empty());
    }
}
