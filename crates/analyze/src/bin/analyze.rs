#![forbid(unsafe_code)]
//! The `analyze` bin: runs the workspace invariant auditor and gates
//! against `ANALYZE_BASELINE.json`.
//!
//! ```text
//! analyze [--root DIR] [--baseline FILE] [--json] [--write-baseline] [--self-check]
//! ```
//!
//! Exit codes: `0` clean (no baseline drift), `1` drift (new or stale
//! findings), `2` usage or I/O error. `--write-baseline` rewrites the
//! baseline to the current findings — the refresh step after fixing a
//! baselined finding (see DESIGN.md §11). `--self-check` runs the
//! fixture suite instead of the workspace: every lint class must flag
//! exactly its marked fixture lines and nothing in the clean twins.

use man_analyze::findings::{diff, Finding, Report};
use man_analyze::{run_all, self_check, Config, Workspace};
use serde::Serialize;
use std::path::PathBuf;

#[derive(Serialize)]
struct GateReport {
    findings: Vec<Finding>,
    new: Vec<Finding>,
    stale: Vec<Finding>,
    accepted: u64,
    clean: bool,
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut json = false;
    let mut write_baseline = false;
    let mut selfcheck = false;
    let mut lock_graph = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage("--baseline needs a value"),
            },
            "--json" => json = true,
            "--write-baseline" => write_baseline = true,
            "--self-check" => selfcheck = true,
            "--lock-graph" => lock_graph = true,
            other => return usage(&format!("unknown argument: {other}")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("ANALYZE_BASELINE.json"));

    if selfcheck {
        let fixtures = root.join("crates/analyze/fixtures");
        return match self_check(&fixtures) {
            Ok(summary) => {
                println!("self-check OK: {summary}");
                0
            }
            Err(e) => {
                eprintln!("self-check FAILED: {e}");
                1
            }
        };
    }

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("analyze: cannot load workspace at {}: {e}", root.display());
            return 2;
        }
    };
    if lock_graph {
        print!(
            "{}",
            man_analyze::lints::lock_order::dump_graph(&ws, &Config::default())
        );
        return 0;
    }
    let findings = run_all(&ws, &Config::default());

    if write_baseline {
        let report = Report {
            findings: findings.clone(),
        };
        if let Err(e) = std::fs::write(&baseline_path, report.to_json() + "\n") {
            eprintln!("analyze: cannot write {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "baseline refreshed: {} finding(s) -> {}",
            findings.len(),
            baseline_path.display()
        );
        return 0;
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "analyze: cannot read baseline {}: {e} (run with --write-baseline to create it)",
                baseline_path.display()
            );
            return 2;
        }
    };
    let baseline = match Report::from_json(&baseline_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return 2;
        }
    };

    let d = diff(&findings, &baseline.findings);
    if json {
        let gate = GateReport {
            findings: findings.clone(),
            new: d.new.clone(),
            stale: d.stale.clone(),
            accepted: d.accepted as u64,
            clean: d.is_clean(),
        };
        match serde_json::to_string_pretty(&gate) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("analyze: JSON encoding failed: {e}");
                return 2;
            }
        }
    } else {
        println!(
            "analyze: {} file(s), {} finding(s) ({} baselined)",
            ws.files.len(),
            findings.len(),
            d.accepted
        );
        for f in &d.new {
            println!("  NEW   [{}] {}:{} {}", f.lint, f.file, f.line, f.message);
        }
        for f in &d.stale {
            println!(
                "  STALE [{}] {}:{} {} (fixed? refresh with --write-baseline)",
                f.lint, f.file, f.line, f.message
            );
        }
    }
    if d.is_clean() {
        if !json {
            println!("analyze: clean (no baseline drift)");
        }
        0
    } else {
        eprintln!(
            "analyze: baseline drift: {} new, {} stale",
            d.new.len(),
            d.stale.len()
        );
        1
    }
}

fn usage(err: &str) -> i32 {
    eprintln!("analyze: {err}");
    eprintln!(
        "usage: analyze [--root DIR] [--baseline FILE] [--json] [--write-baseline] [--self-check]"
    );
    2
}
