//! The per-file line/function model the lints anchor on.
//!
//! A [`SourceFile`] wraps the raw token stream from [`crate::lexer`]
//! with the three structures every lint needs:
//!
//! * a per-line classification (blank / comment-only / attribute /
//!   code) so annotation blocks can be walked upward without regex;
//! * function spans (name, declaration line, body token range) found
//!   by tracking brace depth, so findings can be attributed to the
//!   function that contains them and fn-level annotations resolve;
//! * `#[cfg(test)]` / `#[test]` regions, so lints skip test code —
//!   tests are allowed `HashMap`s, `Relaxed` probes and the rest.
//!
//! Annotation resolution (`has_marker`) is deliberately strict about
//! *where* a justification may live: on the offending line itself, in
//! the contiguous comment/attribute block directly above it, or at the
//! head of the enclosing function. A comment three blank lines away
//! does not count — the justification must stay glued to the code it
//! justifies, or it rots.

use crate::lexer::{lex, Token, TokenKind};

/// Classification of a single source line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineKind {
    /// Nothing but whitespace.
    Blank,
    /// Only comment content (including interior lines of a block
    /// comment).
    CommentOnly,
    /// An attribute line (`#[...]` / `#![...]`), possibly with a
    /// trailing comment.
    Attr,
    /// Anything with real code on it.
    Code,
}

/// A function found by the brace tracker.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// The declared name (raw idents unprefixed).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub decl_line: usize,
    /// Token index of the `fn` keyword.
    pub sig_start_tok: usize,
    /// Token index of the `{` opening the body (== `sig_end`), or the
    /// token count when the fn has no body (trait method ending in `;`).
    pub body_open_tok: usize,
    /// Token index of the matching `}` (exclusive bound for body
    /// tokens); equals `body_open_tok` when there is no body.
    pub body_close_tok: usize,
    /// 1-based line range of the body, inclusive.
    pub body_lines: (usize, usize),
    /// Whether this fn sits inside `#[cfg(test)]` / is `#[test]`.
    pub is_test: bool,
}

impl FnSpan {
    /// Whether this function has a body containing `line`.
    pub fn body_contains(&self, line: usize) -> bool {
        self.body_open_tok < self.body_close_tok
            && line >= self.body_lines.0
            && line <= self.body_lines.1
    }
}

/// A lexed + structured source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The raw lines (for error excerpts).
    pub lines: Vec<String>,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Per-line classification, index 0 == line 1.
    pub line_kinds: Vec<LineKind>,
    /// Functions in declaration order.
    pub fns: Vec<FnSpan>,
    /// Line ranges (inclusive) of `#[cfg(test)] mod` bodies.
    pub test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and structures one file.
    pub fn parse(rel_path: String, text: &str) -> Self {
        let tokens = lex(text);
        let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let line_kinds = classify_lines(&lines, &tokens);
        let (fns, test_ranges) = find_fns(&tokens);
        Self {
            rel_path,
            lines,
            tokens,
            line_kinds,
            fns,
            test_ranges,
        }
    }

    /// The crate this file belongs to, derived from its workspace
    /// path: `crates/<dir>/src/...` → the dir name, `src/...` → the
    /// facade crate.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or("unknown"),
            Some("src") => "man-repro",
            _ => "unknown",
        }
    }

    /// Whether `line` falls inside test code (a `#[cfg(test)]` module
    /// or a `#[test]` function).
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| line >= lo && line <= hi)
            || self.fns.iter().any(|f| f.is_test && f.body_contains(line))
    }

    /// The innermost function whose body contains `line`.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body_contains(line))
            .max_by_key(|f| f.body_lines.0)
    }

    /// Concatenated text of comment tokens *starting* on `line`.
    fn comment_text_on(&self, line: usize) -> String {
        let mut out = String::new();
        for t in &self.tokens {
            if t.line == line && t.is_comment() {
                out.push_str(&t.text);
                out.push('\n');
            }
        }
        out
    }

    /// Collects comment text from the contiguous comment/attribute
    /// block ending directly above `line` (stops at the first blank or
    /// code line).
    fn block_above(&self, line: usize) -> String {
        let mut out = String::new();
        let mut l = line;
        while l > 1 {
            l -= 1;
            match self.line_kinds.get(l - 1) {
                Some(LineKind::CommentOnly) | Some(LineKind::Attr) => {
                    out.push_str(&self.comment_text_on(l));
                }
                _ => break,
            }
        }
        out
    }

    /// Whether a justification containing `marker` (e.g. `"SAFETY:"`)
    /// is attached to `line`: same line, contiguous block above, or
    /// the head of the enclosing function (its decl line, the block
    /// above it, or a `# Safety`-style doc section — doc comments are
    /// comment tokens too).
    pub fn has_marker(&self, line: usize, markers: &[&str]) -> bool {
        let hit = |text: &str| markers.iter().any(|m| text.contains(m));
        if hit(&self.comment_text_on(line)) || hit(&self.block_above(line)) {
            return true;
        }
        if let Some(f) = self.enclosing_fn(line) {
            if hit(&self.comment_text_on(f.decl_line)) || hit(&self.block_above(f.decl_line)) {
                return true;
            }
        }
        false
    }

    /// Iterator over non-comment tokens with their indices.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
    }
}

fn classify_lines(lines: &[String], tokens: &[Token]) -> Vec<LineKind> {
    let mut kinds = vec![LineKind::Blank; lines.len()];
    let mark = |kinds: &mut Vec<LineKind>, line: usize, k: LineKind| {
        if line >= 1 && line <= kinds.len() {
            let cur = &mut kinds[line - 1];
            // Code beats Attr beats CommentOnly beats Blank.
            let rank = |k: &LineKind| match k {
                LineKind::Blank => 0,
                LineKind::CommentOnly => 1,
                LineKind::Attr => 2,
                LineKind::Code => 3,
            };
            if rank(&k) > rank(cur) {
                *cur = k;
            }
        }
    };
    // Track whether the current code run is an attribute: `#` (optional
    // `!`) `[` ... matching `]`.
    let mut attr_bracket_depth = 0usize;
    let mut prev_was_hash = false;
    for t in tokens {
        let span_lines = t.text.matches('\n').count();
        if t.is_comment() {
            for l in t.line..=t.line + span_lines {
                mark(&mut kinds, l, LineKind::CommentOnly);
            }
            continue;
        }
        let in_attr = attr_bracket_depth > 0
            || t.is_punct('#')
            || (prev_was_hash && (t.is_punct('!') || t.is_punct('[')));
        let kind = if in_attr {
            LineKind::Attr
        } else {
            LineKind::Code
        };
        for l in t.line..=t.line + span_lines {
            mark(&mut kinds, l, kind);
        }
        if t.is_punct('[') && (attr_bracket_depth > 0 || prev_was_hash) {
            attr_bracket_depth += 1;
        } else if t.is_punct(']') && attr_bracket_depth > 0 {
            attr_bracket_depth -= 1;
        }
        prev_was_hash = t.is_punct('#') || (prev_was_hash && t.is_punct('!'));
    }
    kinds
}

/// Single pass over the token stream: finds fn spans via a brace stack
/// and `#[cfg(test)] mod` / `#[test] fn` regions.
fn find_fns(tokens: &[Token]) -> (Vec<FnSpan>, Vec<(usize, usize)>) {
    #[derive(Clone, Copy)]
    enum Open {
        Plain,
        FnBody(usize), // index into fns
        TestMod,
    }
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut test_ranges: Vec<(usize, usize)> = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    let mut pending_fn: Option<usize> = None;
    let mut sig_bracket_depth = 0usize; // `[..]` nesting inside a pending signature
    let mut pending_test_attr = false; // saw #[test] or #[cfg(test)]
    let mut pending_test_mod = false; // ... and then `mod`
    let mut test_depth = 0usize; // nested inside any test region?

    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .collect();
    let at = |i: usize| code.get(i).map(|(_, t)| *t);

    let mut i = 0usize;
    while i < code.len() {
        let (tok_idx, t) = code[i];
        if t.is_ident("fn") {
            // Name is the next ident (skip nothing else: `fn name`).
            if let Some(name_tok) = at(i + 1) {
                if matches!(name_tok.kind, TokenKind::Ident | TokenKind::RawIdent) {
                    fns.push(FnSpan {
                        name: name_tok.text.clone(),
                        decl_line: t.line,
                        sig_start_tok: tok_idx,
                        body_open_tok: tokens.len(),
                        body_close_tok: tokens.len(),
                        body_lines: (t.line, t.line),
                        is_test: pending_test_attr || test_depth > 0,
                    });
                    pending_fn = Some(fns.len() - 1);
                    sig_bracket_depth = 0;
                    pending_test_attr = false;
                }
            }
        } else if t.is_ident("cfg") {
            // `#[cfg(test)]` — look for `(` `test`.
            if at(i + 1).is_some_and(|t| t.is_punct('('))
                && at(i + 2).is_some_and(|t| t.is_ident("test"))
            {
                pending_test_attr = true;
            }
        } else if t.is_ident("test") {
            // Bare `#[test]`: previous code token is `[`, next is `]`.
            let prev_is_open = i > 0 && code[i - 1].1.is_punct('[');
            let next_is_close = at(i + 1).is_some_and(|t| t.is_punct(']'));
            if prev_is_open && next_is_close {
                pending_test_attr = true;
            }
        } else if t.is_ident("mod") {
            if pending_test_attr {
                pending_test_mod = true;
                pending_test_attr = false;
            }
        } else if t.is_punct('[') {
            if pending_fn.is_some() {
                sig_bracket_depth += 1;
            }
        } else if t.is_punct(']') {
            if pending_fn.is_some() {
                sig_bracket_depth = sig_bracket_depth.saturating_sub(1);
            }
        } else if t.is_punct(';') {
            // A `;` before any `{` cancels a pending bodiless fn
            // (trait method) or a `mod foo;` declaration — unless it is
            // the length separator of an array type (`[u64; N]`) inside
            // the signature.
            if sig_bracket_depth == 0 {
                pending_fn = None;
                pending_test_mod = false;
            }
        } else if t.is_punct('{') {
            let open = if let Some(fi) = pending_fn.take() {
                fns[fi].body_open_tok = tok_idx;
                fns[fi].body_lines.0 = t.line;
                Open::FnBody(fi)
            } else if pending_test_mod {
                pending_test_mod = false;
                test_depth += 1;
                test_ranges.push((t.line, t.line));
                Open::TestMod
            } else {
                Open::Plain
            };
            stack.push(open);
        } else if t.is_punct('}') {
            match stack.pop() {
                Some(Open::FnBody(fi)) => {
                    fns[fi].body_close_tok = tok_idx;
                    fns[fi].body_lines.1 = t.line;
                }
                Some(Open::TestMod) => {
                    test_depth = test_depth.saturating_sub(1);
                    if let Some(last) = test_ranges.last_mut() {
                        last.1 = t.line;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    (fns, test_ranges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs".into(), src)
    }

    #[test]
    fn fn_spans_track_names_and_bodies() {
        let sf = parse("fn alpha() {\n    inner();\n}\n\nfn beta(x: u32) -> u32 {\n    x\n}\n");
        assert_eq!(sf.fns.len(), 2);
        assert_eq!(sf.fns[0].name, "alpha");
        assert_eq!(sf.fns[0].body_lines, (1, 3));
        assert_eq!(sf.fns[1].name, "beta");
        assert_eq!(sf.fns[1].body_lines, (5, 7));
        assert_eq!(sf.enclosing_fn(2).map(|f| f.name.as_str()), Some("alpha"));
        assert_eq!(sf.enclosing_fn(6).map(|f| f.name.as_str()), Some("beta"));
        assert!(sf.enclosing_fn(4).is_none());
    }

    #[test]
    fn array_type_semicolon_in_signature_keeps_the_fn_body() {
        // The `;` in `[u64; 4]` is an array-length separator, not a
        // bodiless-fn terminator — `load`'s body must still be tracked.
        let sf = parse("fn load(&self) -> ([u64; 4], u64) {\n    inner();\n}\n");
        assert_eq!(sf.fns.len(), 1);
        assert_eq!(sf.fns[0].name, "load");
        assert_eq!(sf.enclosing_fn(2).map(|f| f.name.as_str()), Some("load"));
    }

    #[test]
    fn nested_fns_resolve_to_the_innermost() {
        let sf = parse("fn outer() {\n    fn inner() {\n        x();\n    }\n    y();\n}\n");
        assert_eq!(sf.enclosing_fn(3).map(|f| f.name.as_str()), Some("inner"));
        assert_eq!(sf.enclosing_fn(5).map(|f| f.name.as_str()), Some("outer"));
    }

    #[test]
    fn trait_methods_without_bodies_do_not_swallow_the_next_brace() {
        let sf = parse("trait T {\n    fn sig(&self);\n}\nfn real() {\n    z();\n}\n");
        let real = sf.fns.iter().find(|f| f.name == "real").expect("real fn");
        assert_eq!(real.body_lines, (4, 6));
        let sig = sf.fns.iter().find(|f| f.name == "sig").expect("sig fn");
        assert_eq!(sig.body_open_tok, sig.body_close_tok, "no body");
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_detected() {
        let src = "fn prod() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        probe();\n    }\n}\n";
        let sf = parse(src);
        assert!(!sf.in_test_code(1));
        assert!(sf.in_test_code(7));
        let t = sf.fns.iter().find(|f| f.name == "t").expect("test fn");
        assert!(t.is_test);
        assert!(!sf.fns.iter().find(|f| f.name == "prod").unwrap().is_test);
    }

    #[test]
    fn line_kinds_classify_blank_comment_attr_code() {
        let src = "// comment\n\n#[derive(Debug)]\nstruct S;\n/* multi\nline */\n";
        let sf = parse(src);
        assert_eq!(sf.line_kinds[0], LineKind::CommentOnly);
        assert_eq!(sf.line_kinds[1], LineKind::Blank);
        assert_eq!(sf.line_kinds[2], LineKind::Attr);
        assert_eq!(sf.line_kinds[3], LineKind::Code);
        assert_eq!(sf.line_kinds[4], LineKind::CommentOnly);
        assert_eq!(sf.line_kinds[5], LineKind::CommentOnly);
    }

    #[test]
    fn markers_resolve_same_line_block_above_and_fn_level() {
        let src = concat!(
            "fn a() {\n",
            "    work(); // SAFETY: same line\n",
            "}\n",
            "fn b() {\n",
            "    // SAFETY: block above\n",
            "    #[allow(dead_code)]\n",
            "    work();\n",
            "}\n",
            "/// docs\n",
            "/// # Safety\n",
            "/// fn-level justification\n",
            "fn c() {\n",
            "    work();\n",
            "}\n",
            "fn d() {\n",
            "    // SAFETY: too far — blank line breaks the block\n",
            "\n",
            "    work();\n",
            "}\n",
        );
        let sf = parse(src);
        let markers = &["SAFETY:", "# Safety"];
        assert!(sf.has_marker(2, markers), "same line");
        assert!(sf.has_marker(7, markers), "block above, through an attr");
        assert!(sf.has_marker(13, markers), "fn-level doc section");
        assert!(!sf.has_marker(18, markers), "blank line breaks the block");
    }

    #[test]
    fn crate_name_derivation() {
        let a = SourceFile::parse("crates/par/src/lib.rs".into(), "");
        assert_eq!(a.crate_name(), "par");
        let b = SourceFile::parse("src/session.rs".into(), "");
        assert_eq!(b.crate_name(), "man-repro");
    }
}
