//! Property-based tests for the fixed-point substrate.

use man_fixed::bits::{apply_sign, join_groups, sign_magnitude, split_groups};
use man_fixed::{Accum, QFormat};
use proptest::prelude::*;

proptest! {
    /// Quantizing any in-range value introduces at most half an LSB of error.
    #[test]
    fn quantize_error_at_most_half_lsb(x in -1.9f64..1.9, frac in 0u32..8) {
        let fmt = QFormat::new(8, frac);
        if x <= fmt.max_value() && x >= fmt.min_value() {
            let q = fmt.quantize(x);
            prop_assert!((q.to_f64() - x).abs() <= fmt.resolution() / 2.0 + 1e-12);
        }
    }

    /// Quantization always lands inside the representable range.
    #[test]
    fn quantize_is_always_in_range(x in -1e6f64..1e6, bits in 2u32..16, frac_off in 0u32..4) {
        let frac = (bits - 1).saturating_sub(frac_off);
        let fmt = QFormat::new(bits, frac);
        let q = fmt.quantize(x);
        prop_assert!(fmt.contains_raw(q.raw() as i64));
    }

    /// Sign-magnitude decomposition round-trips for all non-clamped words.
    #[test]
    fn sign_magnitude_roundtrips(raw in -2047i32..=2047) {
        let (neg, mag) = sign_magnitude(raw, 12);
        prop_assert_eq!(apply_sign(mag as u64, neg), raw as i64);
    }

    /// Bit-group splitting round-trips for the paper's 8- and 12-bit layouts.
    #[test]
    fn split_join_roundtrips_8bit(mag in 0u32..128) {
        let widths = [4u32, 3];
        prop_assert_eq!(join_groups(&split_groups(mag, &widths), &widths), mag);
    }

    #[test]
    fn split_join_roundtrips_12bit(mag in 0u32..2048) {
        let widths = [4u32, 4, 3];
        prop_assert_eq!(join_groups(&split_groups(mag, &widths), &widths), mag);
    }

    /// Aligning an accumulator up then back down is lossless.
    #[test]
    fn accum_align_up_down_is_lossless(raw in -1_000_000i64..1_000_000, frac in 0u32..16, up in 0u32..8) {
        let acc = Accum::from_raw(raw, frac);
        prop_assert_eq!(acc.align(frac + up).align(frac), acc);
    }

    /// The widened product matches integer multiplication exactly.
    #[test]
    fn wide_mul_matches_integer_product(a in -128i64..=127, b in -128i64..=127) {
        let fmt = QFormat::new(8, 6);
        let fa = fmt.from_raw(a).unwrap();
        let fb = fmt.from_raw(b).unwrap();
        let p = fa.wide_mul(fb);
        prop_assert_eq!(p.raw(), a * b);
        prop_assert_eq!(p.frac(), 12);
    }

    /// `fitting` always produces a format that can represent the value.
    #[test]
    fn fitting_always_fits(max_abs in 0.0f64..1000.0, bits in 2u32..16) {
        let fmt = QFormat::fitting(bits, max_abs);
        if max_abs <= fmt.max_value() {
            // Representable: quantization saturation cannot trigger.
            let q = fmt.quantize(max_abs);
            prop_assert!((q.to_f64() - max_abs).abs() <= fmt.resolution() / 2.0 + 1e-12);
        }
        // Even when max_abs exceeds the widest format, the fraction is valid.
        prop_assert!(fmt.frac() < bits);
    }
}
