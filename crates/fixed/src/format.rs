use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Fx;

/// A two's-complement fixed-point format: `bits` total word length
/// (including the sign bit) and `frac` fractional bits.
///
/// The representable raw range is `[-2^(bits-1), 2^(bits-1) - 1]` and a raw
/// word `r` denotes the real value `r / 2^frac`. The paper's neurons use
/// `QFormat::new(8, f)` and `QFormat::new(12, f)` words for both inputs and
/// synapse weights, with `f` chosen per layer so the weight range fits
/// (see [`QFormat::fitting`]).
///
/// # Example
///
/// ```
/// use man_fixed::QFormat;
///
/// let fmt = QFormat::new(8, 6);
/// assert_eq!(fmt.max_value(), 1.984375); // (2^7 - 1) / 2^6
/// assert_eq!(fmt.min_value(), -2.0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QFormat {
    bits: u32,
    frac: u32,
}

impl QFormat {
    /// Creates a format with `bits` total word length and `frac` fractional
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `2..=32` or if `frac > bits - 1` (at least
    /// the sign bit must remain).
    pub const fn new(bits: u32, frac: u32) -> Self {
        assert!(bits >= 2 && bits <= 32, "word length must be in 2..=32");
        assert!(frac < bits, "fractional bits must leave a sign bit");
        Self { bits, frac }
    }

    /// Total word length in bits, including the sign bit.
    pub const fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of fractional bits.
    pub const fn frac(&self) -> u32 {
        self.frac
    }

    /// Number of integer (non-sign, non-fractional) bits.
    pub const fn int_bits(&self) -> u32 {
        self.bits - 1 - self.frac
    }

    /// The scaling factor `2^frac` mapping real values to raw words.
    pub fn scale(&self) -> f64 {
        (1u64 << self.frac) as f64
    }

    /// The value of one least-significant bit, `2^-frac`.
    pub fn resolution(&self) -> f64 {
        1.0 / self.scale()
    }

    /// Largest representable raw word, `2^(bits-1) - 1`.
    pub const fn max_raw(&self) -> i32 {
        ((1u64 << (self.bits - 1)) - 1) as i32
    }

    /// Smallest representable raw word, `-2^(bits-1)`.
    pub const fn min_raw(&self) -> i32 {
        -((1u64 << (self.bits - 1)) as i64) as i32
    }

    /// Largest representable real value.
    pub fn max_value(&self) -> f64 {
        self.max_raw() as f64 / self.scale()
    }

    /// Smallest (most negative) representable real value.
    pub fn min_value(&self) -> f64 {
        self.min_raw() as f64 / self.scale()
    }

    /// Returns `true` if `raw` fits in this format.
    pub fn contains_raw(&self, raw: i64) -> bool {
        raw >= self.min_raw() as i64 && raw <= self.max_raw() as i64
    }

    /// Clamps `raw` into the representable range.
    pub fn saturate_raw(&self, raw: i64) -> i32 {
        raw.clamp(self.min_raw() as i64, self.max_raw() as i64) as i32
    }

    /// Quantizes a real value: scale by `2^frac`, round half to even, and
    /// saturate into range.
    ///
    /// Non-finite inputs are handled conservatively: `NaN` quantizes to zero
    /// and infinities saturate.
    pub fn quantize(&self, x: f64) -> Fx {
        if x.is_nan() {
            return Fx::from_parts(0, *self);
        }
        let scaled = x * self.scale();
        let raw = if scaled >= self.max_raw() as f64 {
            self.max_raw() as i64
        } else if scaled <= self.min_raw() as f64 {
            self.min_raw() as i64
        } else {
            scaled.round_ties_even() as i64
        };
        Fx::from_parts(self.saturate_raw(raw), *self)
    }

    /// Builds a value from a raw word.
    ///
    /// # Errors
    ///
    /// Returns [`RawOutOfRangeError`] if `raw` does not fit in this format.
    pub fn from_raw(&self, raw: i64) -> Result<Fx, RawOutOfRangeError> {
        if self.contains_raw(raw) {
            Ok(Fx::from_parts(raw as i32, *self))
        } else {
            Err(RawOutOfRangeError { raw, format: *self })
        }
    }

    /// Builds a value from a raw word, saturating into range.
    pub fn from_raw_saturating(&self, raw: i64) -> Fx {
        Fx::from_parts(self.saturate_raw(raw), *self)
    }

    /// Chooses the format with `bits` total bits and the largest fraction
    /// such that `max_abs` is still representable.
    ///
    /// This is the per-layer format fitter used when quantizing trained
    /// weights: the more headroom a layer's weights need, the fewer
    /// fractional bits remain.
    ///
    /// # Example
    ///
    /// ```
    /// use man_fixed::QFormat;
    ///
    /// // Weights up to ±0.9 fit in Q0.7 (8-bit).
    /// assert_eq!(QFormat::fitting(8, 0.9).frac(), 7);
    /// // Weights up to ±3.5 need two integer bits.
    /// assert_eq!(QFormat::fitting(8, 3.5).frac(), 5);
    /// ```
    pub fn fitting(bits: u32, max_abs: f64) -> QFormat {
        let max_abs = if max_abs.is_finite() && max_abs > 0.0 {
            max_abs
        } else {
            1.0
        };
        for frac in (0..bits).rev() {
            let fmt = QFormat::new(bits, frac);
            if max_abs <= fmt.max_value() {
                return fmt;
            }
        }
        QFormat::new(bits, 0)
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{} ({}b)", self.int_bits(), self.frac, self.bits)
    }
}

/// Error returned by [`QFormat::from_raw`] when a raw word does not fit the
/// format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawOutOfRangeError {
    /// The offending raw word.
    pub raw: i64,
    /// The format it was checked against.
    pub format: QFormat,
}

impl fmt::Display for RawOutOfRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "raw word {} does not fit {} (range {}..={})",
            self.raw,
            self.format,
            self.format.min_raw(),
            self.format.max_raw()
        )
    }
}

impl std::error::Error for RawOutOfRangeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_endpoints() {
        let fmt = QFormat::new(8, 6);
        assert_eq!(fmt.max_raw(), 127);
        assert_eq!(fmt.min_raw(), -128);
        assert_eq!(fmt.max_value(), 127.0 / 64.0);
        assert_eq!(fmt.min_value(), -2.0);
        assert_eq!(fmt.int_bits(), 1);
    }

    #[test]
    fn quantize_rounds_half_to_even() {
        let fmt = QFormat::new(8, 0);
        assert_eq!(fmt.quantize(0.5).raw(), 0);
        assert_eq!(fmt.quantize(1.5).raw(), 2);
        assert_eq!(fmt.quantize(2.5).raw(), 2);
        assert_eq!(fmt.quantize(-0.5).raw(), 0);
        assert_eq!(fmt.quantize(-1.5).raw(), -2);
    }

    #[test]
    fn quantize_saturates() {
        let fmt = QFormat::new(8, 6);
        assert_eq!(fmt.quantize(100.0).raw(), 127);
        assert_eq!(fmt.quantize(-100.0).raw(), -128);
        assert_eq!(fmt.quantize(f64::INFINITY).raw(), 127);
        assert_eq!(fmt.quantize(f64::NEG_INFINITY).raw(), -128);
        assert_eq!(fmt.quantize(f64::NAN).raw(), 0);
    }

    #[test]
    fn from_raw_validates() {
        let fmt = QFormat::new(8, 4);
        assert!(fmt.from_raw(127).is_ok());
        assert!(fmt.from_raw(128).is_err());
        assert!(fmt.from_raw(-128).is_ok());
        assert!(fmt.from_raw(-129).is_err());
        let err = fmt.from_raw(300).unwrap_err();
        assert!(err.to_string().contains("300"));
    }

    #[test]
    fn fitting_picks_largest_fraction() {
        assert_eq!(QFormat::fitting(8, 0.5).frac(), 7);
        assert_eq!(QFormat::fitting(8, 1.0).frac(), 6);
        assert_eq!(QFormat::fitting(12, 0.9).frac(), 11);
        // Degenerate guards.
        assert_eq!(QFormat::fitting(8, 0.0).frac(), 6);
        assert_eq!(QFormat::fitting(8, f64::NAN).frac(), 6);
    }

    #[test]
    #[should_panic(expected = "word length")]
    fn new_rejects_wide_words() {
        let _ = QFormat::new(33, 0);
    }

    #[test]
    #[should_panic(expected = "sign bit")]
    fn new_rejects_all_fraction() {
        let _ = QFormat::new(8, 8);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(QFormat::new(8, 6).to_string(), "Q1.6 (8b)");
        assert_eq!(QFormat::new(12, 8).to_string(), "Q3.8 (12b)");
    }
}
