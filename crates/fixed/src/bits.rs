//! Bit-field helpers shared by the quartet decomposition and the hardware
//! model.
//!
//! The ASM datapath operates on the *sign-magnitude* view of a weight: the
//! magnitude is split into little-endian bit groups ("quartets" in the
//! paper), each of which independently selects, shifts and adds an alphabet.

/// Splits a two's-complement word of `bits` total length into sign and
/// magnitude.
///
/// The most negative word (magnitude `2^(bits-1)`) is clamped to the largest
/// representable magnitude `2^(bits-1) - 1`, matching the paper's datapath
/// which multiplies only absolute values of at most `bits - 1` bits.
///
/// # Example
///
/// ```
/// use man_fixed::bits::sign_magnitude;
///
/// assert_eq!(sign_magnitude(105, 8), (false, 105));
/// assert_eq!(sign_magnitude(-66, 8), (true, 66));
/// assert_eq!(sign_magnitude(-128, 8), (true, 127)); // clamped
/// ```
///
/// # Panics
///
/// Panics if `raw` does not fit in `bits` bits (two's complement).
pub fn sign_magnitude(raw: i32, bits: u32) -> (bool, u32) {
    assert!((2..=32).contains(&bits), "word length must be in 2..=32");
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    assert!(
        (raw as i64) >= min && (raw as i64) <= max,
        "raw word {raw} does not fit in {bits} bits"
    );
    if raw >= 0 {
        (false, raw as u32)
    } else {
        let mag = (-(raw as i64)).min(max) as u32;
        (true, mag)
    }
}

/// Reapplies a sign to a magnitude.
///
/// # Example
///
/// ```
/// use man_fixed::bits::apply_sign;
///
/// assert_eq!(apply_sign(66, true), -66);
/// assert_eq!(apply_sign(66, false), 66);
/// ```
pub fn apply_sign(magnitude: u64, negative: bool) -> i64 {
    if negative {
        -(magnitude as i64)
    } else {
        magnitude as i64
    }
}

/// Splits `value` into little-endian bit groups of the given widths.
///
/// `widths[0]` is the least-significant group. The groups must cover the
/// value: any bits of `value` beyond the total width cause a panic, so the
/// decomposition is always reversible with [`join_groups`].
///
/// # Example
///
/// ```
/// use man_fixed::bits::split_groups;
///
/// // 0b110_1001 = 105 -> LSB quartet 0b1001 = 9, MSB group 0b110 = 6.
/// assert_eq!(split_groups(105, &[4, 3]), vec![9, 6]);
/// ```
///
/// # Panics
///
/// Panics if any width is zero, the total width exceeds 32, or `value` has
/// bits beyond the total width.
pub fn split_groups(value: u32, widths: &[u32]) -> Vec<u32> {
    let total: u32 = widths.iter().sum();
    assert!(
        widths.iter().all(|&w| w > 0),
        "group widths must be nonzero"
    );
    assert!(total <= 32, "total group width must be <= 32");
    assert!(
        total == 32 || value < (1u32 << total),
        "value {value} has bits beyond the total group width {total}"
    );
    let mut rest = value;
    widths
        .iter()
        .map(|&w| {
            let mask = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
            let g = rest & mask;
            rest = if w == 32 { 0 } else { rest >> w };
            g
        })
        .collect()
}

/// Reassembles little-endian bit groups produced by [`split_groups`].
///
/// # Panics
///
/// Panics if the group/width counts differ or any group overflows its width.
pub fn join_groups(groups: &[u32], widths: &[u32]) -> u32 {
    assert_eq!(groups.len(), widths.len(), "group/width count mismatch");
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (&g, &w) in groups.iter().zip(widths) {
        assert!(
            w == 32 || (g as u64) < (1u64 << w),
            "group {g} overflows {w} bits"
        );
        value |= (g as u64) << shift;
        shift += w;
    }
    assert!(shift <= 32, "total group width must be <= 32");
    value as u32
}

/// Hamming distance between two words — the number of toggling bits, used by
/// the switching-activity power model.
///
/// # Example
///
/// ```
/// use man_fixed::bits::hamming;
///
/// assert_eq!(hamming(0b1010, 0b0110), 2);
/// ```
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_magnitude_roundtrip() {
        for raw in -127i32..=127 {
            let (neg, mag) = sign_magnitude(raw, 8);
            assert_eq!(apply_sign(mag as u64, neg), raw as i64);
        }
    }

    #[test]
    fn sign_magnitude_clamps_most_negative() {
        assert_eq!(sign_magnitude(-128, 8), (true, 127));
        assert_eq!(sign_magnitude(-2048, 12), (true, 2047));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn sign_magnitude_rejects_oversized() {
        let _ = sign_magnitude(200, 8);
    }

    #[test]
    fn paper_table1_decompositions() {
        // Table I: W1 = 0b0110_1001 = 105 -> quartets (9, 6);
        //          W2 = 0b0100_0010 = 66  -> quartets (2, 4).
        assert_eq!(split_groups(105, &[4, 3]), vec![9, 6]);
        assert_eq!(split_groups(66, &[4, 3]), vec![2, 4]);
    }

    #[test]
    fn twelve_bit_three_groups() {
        // 11-bit magnitude -> R (4), Q (4), P (3).
        let mag = 0b110_1011_0101u32;
        let g = split_groups(mag, &[4, 4, 3]);
        assert_eq!(g, vec![0b0101, 0b1011, 0b110]);
        assert_eq!(join_groups(&g, &[4, 4, 3]), mag);
    }

    #[test]
    #[should_panic(expected = "beyond the total")]
    fn split_rejects_overflowing_value() {
        let _ = split_groups(1 << 8, &[4, 4]);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn join_rejects_overflowing_group() {
        let _ = join_groups(&[16, 0], &[4, 4]);
    }

    #[test]
    fn hamming_counts_toggles() {
        assert_eq!(hamming(0, u64::MAX), 64);
        assert_eq!(hamming(0xff, 0xff), 0);
    }
}
