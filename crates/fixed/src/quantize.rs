//! Bulk quantization helpers for tensors of trained weights and activations.
//!
//! The design methodology quantizes every layer's weights into a fixed word
//! length (8 or 12 bits) with a per-layer fraction chosen so the largest
//! weight magnitude still fits ([`fit_format`]). These helpers operate on
//! plain `f32` slices so the neural-network substrate does not need to know
//! about fixed-point types.

use crate::{Fx, QFormat};

/// Largest absolute value in a slice (0.0 for an empty slice; NaNs ignored).
pub fn max_abs(values: &[f32]) -> f64 {
    values
        .iter()
        .filter(|v| !v.is_nan())
        .fold(0.0f64, |m, &v| m.max((v as f64).abs()))
}

/// Chooses the `bits`-wide format with the most fractional bits that still
/// represents every value in `values`.
///
/// # Example
///
/// ```
/// use man_fixed::quantize::fit_format;
///
/// let fmt = fit_format(8, &[0.25, -0.9, 0.1]);
/// assert_eq!(fmt.frac(), 7);
/// ```
pub fn fit_format(bits: u32, values: &[f32]) -> QFormat {
    QFormat::fitting(bits, max_abs(values))
}

/// Quantizes a slice into `format`.
pub fn quantize_slice(format: QFormat, values: &[f32]) -> Vec<Fx> {
    values.iter().map(|&v| format.quantize(v as f64)).collect()
}

/// Dequantizes a slice back to `f32`.
pub fn dequantize_slice(values: &[Fx]) -> Vec<f32> {
    values.iter().map(|v| v.to_f64() as f32).collect()
}

/// Quantizes a slice and immediately dequantizes it — the "fake quantization"
/// transform used during constrained retraining, where the forward pass must
/// see exactly the fixed-point weights while the optimizer keeps float
/// shadows.
pub fn fake_quantize_slice(format: QFormat, values: &mut [f32]) {
    for v in values.iter_mut() {
        *v = format.quantize(*v as f64).to_f64() as f32;
    }
}

/// Root-mean-square quantization error of representing `values` in `format`.
///
/// Useful for choosing word lengths and for regression tests: the error of a
/// well-fitted format is bounded by `resolution / sqrt(12)` for smooth data.
pub fn rms_error(format: QFormat, values: &[f32]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sum: f64 = values
        .iter()
        .map(|&v| {
            let q = format.quantize(v as f64).to_f64();
            let e = v as f64 - q;
            e * e
        })
        .sum();
    (sum / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_ignores_nan() {
        assert_eq!(max_abs(&[1.0, -3.0, f32::NAN]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let fmt = QFormat::new(8, 6);
        let values = [0.1f32, -0.73, 1.2, -1.99, 0.0];
        let q = quantize_slice(fmt, &values);
        let d = dequantize_slice(&q);
        for (v, r) in values.iter().zip(&d) {
            assert!((v - r).abs() as f64 <= fmt.resolution() / 2.0 + 1e-9);
        }
    }

    #[test]
    fn fake_quantize_is_idempotent() {
        let fmt = QFormat::new(8, 5);
        let mut values = vec![0.3f32, -0.77, 1.5, 2.9];
        fake_quantize_slice(fmt, &mut values);
        let once = values.clone();
        fake_quantize_slice(fmt, &mut values);
        assert_eq!(once, values);
    }

    #[test]
    fn rms_error_shrinks_with_more_bits() {
        let values: Vec<f32> = (0..256).map(|i| (i as f32 / 256.0).sin()).collect();
        let e8 = rms_error(QFormat::new(8, 7), &values);
        let e12 = rms_error(QFormat::new(12, 11), &values);
        assert!(e12 < e8 / 8.0, "e8={e8} e12={e12}");
    }
}
