use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::format::QFormat;

/// A scalar fixed-point value: a raw two's-complement word paired with its
/// [`QFormat`].
///
/// Arithmetic between two `Fx` values requires identical formats; mixed-format
/// arithmetic in the inference engine goes through [`Accum`], which carries
/// the widened raw product explicitly.
///
/// # Example
///
/// ```
/// use man_fixed::QFormat;
///
/// let fmt = QFormat::new(8, 6);
/// let a = fmt.quantize(0.5);
/// let b = fmt.quantize(0.25);
/// assert_eq!(a.saturating_add(b).to_f64(), 0.75);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fx {
    raw: i32,
    format: QFormat,
}

impl Fx {
    pub(crate) fn from_parts(raw: i32, format: QFormat) -> Self {
        debug_assert!(format.contains_raw(raw as i64));
        Self { raw, format }
    }

    /// The zero value in `format`.
    pub fn zero(format: QFormat) -> Self {
        Self { raw: 0, format }
    }

    /// The raw two's-complement word.
    pub const fn raw(&self) -> i32 {
        self.raw
    }

    /// The format this value is expressed in.
    pub const fn format(&self) -> QFormat {
        self.format
    }

    /// The real value `raw / 2^frac`.
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 / self.format.scale()
    }

    /// Saturating addition.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn saturating_add(self, rhs: Fx) -> Fx {
        assert_eq!(self.format, rhs.format, "format mismatch in add");
        self.format
            .from_raw_saturating(self.raw as i64 + rhs.raw as i64)
    }

    /// Saturating subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the operands have different formats.
    pub fn saturating_sub(self, rhs: Fx) -> Fx {
        assert_eq!(self.format, rhs.format, "format mismatch in sub");
        self.format
            .from_raw_saturating(self.raw as i64 - rhs.raw as i64)
    }

    /// Saturating negation (`-min_raw` saturates to `max_raw`).
    pub fn saturating_neg(self) -> Fx {
        self.format.from_raw_saturating(-(self.raw as i64))
    }

    /// Saturating absolute value (`|min_raw|` saturates to `max_raw`).
    ///
    /// The paper's ASM datapath multiplies the *absolute* weight value and
    /// reapplies the sign, so the most negative word is never needed.
    pub fn saturating_abs(self) -> Fx {
        self.format.from_raw_saturating((self.raw as i64).abs())
    }

    /// Full-precision product: the raw words multiply exactly into an
    /// [`Accum`] whose fraction is the sum of the operand fractions.
    pub fn wide_mul(self, rhs: Fx) -> Accum {
        Accum {
            raw: self.raw as i64 * rhs.raw as i64,
            frac: self.format.frac() + rhs.format.frac(),
        }
    }

    /// Re-expresses this value in another format, rounding half to even and
    /// saturating.
    pub fn rescale(self, format: QFormat) -> Fx {
        Accum {
            raw: self.raw as i64,
            frac: self.format.frac(),
        }
        .to_fx(format)
    }

    /// `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.raw == 0
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.to_f64(), self.format)
    }
}

impl PartialOrd for Fx {
    /// Values are ordered only within the same format; comparing across
    /// formats yields `None`.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.format == other.format {
            Some(self.raw.cmp(&other.raw))
        } else {
            None
        }
    }
}

/// Rounds `raw / 2^shift` to the nearest integer, ties to even.
///
/// Works for negative `raw` because the remainder after an arithmetic
/// right-shift is always non-negative.
fn shift_round_ties_even(raw: i64, shift: u32) -> i64 {
    if shift == 0 {
        return raw;
    }
    if shift >= 63 {
        // The magnitude of any i64 divided by 2^63 rounds to 0 except at the
        // very extremes, which saturate later anyway.
        return 0;
    }
    let floor = raw >> shift;
    let rem = raw - (floor << shift);
    let half = 1i64 << (shift - 1);
    match rem.cmp(&half) {
        Ordering::Less => floor,
        Ordering::Greater => floor + 1,
        Ordering::Equal => {
            if floor & 1 == 0 {
                floor
            } else {
                floor + 1
            }
        }
    }
}

/// A widened multiply-accumulate register: a 64-bit raw sum at a fixed
/// fraction.
///
/// Mirrors the accumulator in a digital neuron: products from
/// [`Fx::wide_mul`] are summed exactly, then [`Accum::to_fx`] models the
/// final requantization before the activation function.
///
/// # Example
///
/// ```
/// use man_fixed::{Accum, QFormat};
///
/// let fmt = QFormat::new(8, 6);
/// let mut acc = Accum::zero(12);
/// acc.add(fmt.quantize(0.5).wide_mul(fmt.quantize(0.5)));
/// acc.add(fmt.quantize(0.25).wide_mul(fmt.quantize(0.5)));
/// assert_eq!(acc.to_f64(), 0.375);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Accum {
    raw: i64,
    frac: u32,
}

impl Accum {
    /// A zero accumulator with `frac` fractional bits.
    pub fn zero(frac: u32) -> Self {
        Self { raw: 0, frac }
    }

    /// Builds an accumulator from raw parts.
    pub fn from_raw(raw: i64, frac: u32) -> Self {
        Self { raw, frac }
    }

    /// The raw widened word.
    pub const fn raw(&self) -> i64 {
        self.raw
    }

    /// The fraction the raw word is expressed at.
    pub const fn frac(&self) -> u32 {
        self.frac
    }

    /// Adds another accumulator value.
    ///
    /// # Panics
    ///
    /// Panics if the fractions differ (products of differently scaled layers
    /// must be aligned explicitly with [`Accum::align`]).
    pub fn add(&mut self, rhs: Accum) {
        assert_eq!(self.frac, rhs.frac, "fraction mismatch in accumulate");
        self.raw += rhs.raw;
    }

    /// Re-expresses the accumulator at another fraction, rounding half to
    /// even when precision is dropped.
    pub fn align(self, frac: u32) -> Accum {
        if frac >= self.frac {
            Accum {
                raw: self.raw << (frac - self.frac),
                frac,
            }
        } else {
            Accum {
                raw: shift_round_ties_even(self.raw, self.frac - frac),
                frac,
            }
        }
    }

    /// The real value of the accumulator.
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 / (1u64 << self.frac) as f64
    }

    /// Requantizes into `format`, rounding half to even and saturating —
    /// the hardware step between accumulator and activation input.
    pub fn to_fx(self, format: QFormat) -> Fx {
        let aligned = self.align(format.frac());
        format.from_raw_saturating(aligned.raw)
    }
}

impl fmt::Display for Accum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (raw {} @ frac {})",
            self.to_f64(),
            self.raw,
            self.frac
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt8() -> QFormat {
        QFormat::new(8, 6)
    }

    #[test]
    fn add_saturates_at_extremes() {
        let max = fmt8().from_raw(127).unwrap();
        assert_eq!(max.saturating_add(max).raw(), 127);
        let min = fmt8().from_raw(-128).unwrap();
        assert_eq!(min.saturating_add(min).raw(), -128);
    }

    #[test]
    fn neg_and_abs_saturate_min_raw() {
        let min = fmt8().from_raw(-128).unwrap();
        assert_eq!(min.saturating_neg().raw(), 127);
        assert_eq!(min.saturating_abs().raw(), 127);
        let v = fmt8().from_raw(-5).unwrap();
        assert_eq!(v.saturating_abs().raw(), 5);
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn add_rejects_mixed_formats() {
        let a = QFormat::new(8, 6).quantize(0.1);
        let b = QFormat::new(8, 5).quantize(0.1);
        let _ = a.saturating_add(b);
    }

    #[test]
    fn wide_mul_is_exact() {
        let fmt = fmt8();
        let a = fmt.from_raw(-77).unwrap();
        let b = fmt.from_raw(113).unwrap();
        let p = a.wide_mul(b);
        assert_eq!(p.raw(), -77 * 113);
        assert_eq!(p.frac(), 12);
        assert!((p.to_f64() - a.to_f64() * b.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn align_round_trip_up_then_down() {
        let acc = Accum::from_raw(1234, 6);
        assert_eq!(acc.align(10).align(6), acc);
    }

    #[test]
    fn shift_rounding_ties_to_even() {
        // 3/2 = 1.5 -> 2, 1/2 = 0.5 -> 0, -1/2 -> 0, -3/2 -> -2.
        assert_eq!(shift_round_ties_even(3, 1), 2);
        assert_eq!(shift_round_ties_even(1, 1), 0);
        assert_eq!(shift_round_ties_even(-1, 1), 0);
        assert_eq!(shift_round_ties_even(-3, 1), -2);
        // Non-tie cases round to nearest.
        assert_eq!(shift_round_ties_even(5, 2), 1);
        assert_eq!(shift_round_ties_even(7, 2), 2);
        assert_eq!(shift_round_ties_even(-5, 2), -1);
        assert_eq!(shift_round_ties_even(-7, 2), -2);
    }

    #[test]
    fn to_fx_saturates() {
        let acc = Accum::from_raw(1 << 20, 6);
        assert_eq!(acc.to_fx(fmt8()).raw(), 127);
        let acc = Accum::from_raw(-(1 << 20), 6);
        assert_eq!(acc.to_fx(fmt8()).raw(), -128);
    }

    #[test]
    fn ordering_only_within_format() {
        let a = fmt8().quantize(0.25);
        let b = fmt8().quantize(0.5);
        assert!(a < b);
        let c = QFormat::new(12, 6).quantize(0.5);
        assert_eq!(a.partial_cmp(&c), None);
    }

    #[test]
    fn rescale_preserves_value_when_widening() {
        let a = fmt8().quantize(0.75);
        let wide = a.rescale(QFormat::new(12, 9));
        assert_eq!(wide.to_f64(), 0.75);
    }
}
