//! Fixed-point arithmetic substrate for the MAN reproduction.
//!
//! The paper evaluates neurons whose inputs and synapse weights are 8- or
//! 12-bit two's-complement fixed-point words. This crate provides the number
//! formats ([`QFormat`]), scalar values ([`Fx`]), a widened accumulator for
//! multiply-accumulate chains ([`Accum`]), bit-field helpers used by the
//! quartet decomposition ([`bits`]), and bulk quantization helpers
//! ([`quantize`]).
//!
//! # Example
//!
//! ```
//! use man_fixed::QFormat;
//!
//! // 8-bit weights with 6 fractional bits: range [-2, 2).
//! let fmt = QFormat::new(8, 6);
//! let w = fmt.quantize(0.7312);
//! assert!((w.to_f64() - 0.7312).abs() <= fmt.resolution() / 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
mod format;
pub mod quantize;
mod value;

pub use format::{QFormat, RawOutOfRangeError};
pub use value::{Accum, Fx};
