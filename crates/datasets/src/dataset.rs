//! The dataset container shared by all generators.

/// A labelled image dataset with train/test splits. Images are flat
/// 32×32 grayscale vectors with pixels in `[0, 1)`.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name (e.g. "digits (MNIST-like)").
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Training images.
    pub train_images: Vec<Vec<f32>>,
    /// Training labels (`< classes`).
    pub train_labels: Vec<usize>,
    /// Held-out test images.
    pub test_images: Vec<Vec<f32>>,
    /// Held-out test labels.
    pub test_labels: Vec<usize>,
}

impl Dataset {
    /// Validates internal consistency (sizes, label ranges, pixel bounds).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on any inconsistency — generators
    /// call this before returning.
    pub fn validate(&self) {
        assert_eq!(self.train_images.len(), self.train_labels.len());
        assert_eq!(self.test_images.len(), self.test_labels.len());
        assert!(self.classes >= 2, "need at least two classes");
        for (img, &label) in self
            .train_images
            .iter()
            .zip(&self.train_labels)
            .chain(self.test_images.iter().zip(&self.test_labels))
        {
            assert_eq!(img.len(), crate::render::IMG_PIXELS, "wrong image size");
            assert!(label < self.classes, "label {label} out of range");
            assert!(
                img.iter().all(|&p| (0.0..1.0).contains(&p)),
                "pixels must lie in [0, 1)"
            );
        }
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_images.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_images.len()
    }
}

/// Generation options common to every benchmark.
#[derive(Copy, Clone, Debug)]
pub struct GenOptions {
    /// Training samples to generate.
    pub train: usize,
    /// Test samples to generate.
    pub test: usize,
    /// RNG seed — the same seed always reproduces the same dataset.
    pub seed: u64,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self {
            train: 4000,
            test: 1000,
            seed: 0xDA7E_2016,
        }
    }
}

impl GenOptions {
    /// A reduced configuration for fast tests and `--quick` experiment
    /// runs.
    pub fn quick(seed: u64) -> Self {
        Self {
            train: 600,
            test: 200,
            seed,
        }
    }
}
