//! The four benchmark generators, graded in difficulty to mirror the
//! paper's observation that "classification accuracy of ASM based NNs is
//! very good for simple datasets such as MNIST and YUV Faces, compared to
//! more complex datasets such as SVHN and TICH".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, GenOptions};
use crate::glyph;
use crate::render::{
    add_noise, draw_ellipse, draw_glyph, draw_gradient, finalize, random_deform, Deform,
    DeformRanges, IMG_PIXELS, IMG_SIDE,
};

fn center() -> (f32, f32) {
    (IMG_SIDE as f32 / 2.0, IMG_SIDE as f32 / 2.0)
}

fn split(
    name: &str,
    classes: usize,
    opts: &GenOptions,
    mut render: impl FnMut(usize, &mut SmallRng) -> Vec<f32>,
) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut gen_set = |n: usize, rng: &mut SmallRng| {
        let mut images = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % classes; // balanced classes
            images.push(render(label, rng));
            labels.push(label);
        }
        (images, labels)
    };
    let (train_images, train_labels) = gen_set(opts.train, &mut rng);
    let (test_images, test_labels) = gen_set(opts.test, &mut rng);
    let ds = Dataset {
        name: name.to_owned(),
        classes,
        train_images,
        train_labels,
        test_images,
        test_labels,
    };
    ds.validate();
    ds
}

/// MNIST-like handwritten digits: clean glyphs with mild deformation and
/// noise. The easiest benchmark — Table III territory.
pub fn digits(opts: &GenOptions) -> Dataset {
    let ranges = DeformRanges {
        rotation: 0.21,
        scale: (0.72, 1.02),
        shear: 0.18,
        shift: 2.5,
        thickness: (0.42, 0.68),
        ink: (0.75, 1.0),
    };
    split("digits (MNIST-like)", 10, opts, |label, rng| {
        let mut canvas = vec![0.0f32; IMG_PIXELS];
        let d = random_deform(&ranges, rng);
        draw_glyph(&mut canvas, &glyph::bitmap(label), &d, center());
        add_noise(&mut canvas, 0.06, rng);
        finalize(&mut canvas);
        canvas
    })
}

/// YUV-Faces-like face detection: class 1 = a procedural face (head
/// ellipse, eyes, mouth), class 0 = structured non-faces including
/// near-miss distractors. Two classes, as in Table II.
pub fn faces(opts: &GenOptions) -> Dataset {
    split("faces (YUV-Faces-like)", 2, opts, |label, rng| {
        let mut canvas = vec![0.0f32; IMG_PIXELS];
        draw_gradient(
            &mut canvas,
            rng.gen_range(0.05..0.25),
            (rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2)),
        );
        let cx = 16.0 + rng.gen_range(-3.0..3.0);
        let cy = 16.0 + rng.gen_range(-3.0..3.0);
        let rx = rng.gen_range(7.0..10.5);
        let ry = rng.gen_range(9.0..12.5);
        let head_ink = rng.gen_range(0.3..0.5);
        if label == 1 {
            // Face: head + two eyes + mouth.
            draw_ellipse(&mut canvas, (cx, cy), (rx, ry), head_ink);
            let eye_dx = rx * rng.gen_range(0.36..0.5);
            let eye_dy = ry * rng.gen_range(0.25..0.4);
            let eye_r = rng.gen_range(1.1..1.9);
            for side in [-1.0f32, 1.0] {
                draw_ellipse(
                    &mut canvas,
                    (cx + side * eye_dx, cy - eye_dy),
                    (eye_r, eye_r),
                    0.45,
                );
            }
            draw_ellipse(
                &mut canvas,
                (cx, cy + ry * rng.gen_range(0.35..0.5)),
                (rx * rng.gen_range(0.3..0.5), 1.2),
                0.45,
            );
        } else {
            // Non-face: blobs, a lone head outline, or eyes without a head.
            match rng.gen_range(0..4) {
                0 => {
                    for _ in 0..rng.gen_range(2..5) {
                        draw_ellipse(
                            &mut canvas,
                            (rng.gen_range(4.0..28.0), rng.gen_range(4.0..28.0)),
                            (rng.gen_range(1.5..6.0), rng.gen_range(1.5..6.0)),
                            rng.gen_range(0.3..0.6),
                        );
                    }
                }
                1 => {
                    // Head without features.
                    draw_ellipse(&mut canvas, (cx, cy), (rx, ry), head_ink);
                }
                2 => {
                    // Features without a head.
                    for side in [-1.0f32, 1.0] {
                        draw_ellipse(&mut canvas, (cx + side * 4.0, cy - 3.0), (1.5, 1.5), 0.45);
                    }
                    draw_ellipse(&mut canvas, (cx, cy + 4.0), (3.5, 1.2), 0.45);
                }
                _ => {
                    // A letter pretending to be a texture.
                    let class = rng.gen_range(10..36);
                    let d = Deform {
                        scale: rng.gen_range(0.8..1.1),
                        ink: rng.gen_range(0.3..0.6),
                        ..Deform::default()
                    };
                    draw_glyph(&mut canvas, &glyph::bitmap(class), &d, center());
                }
            }
        }
        add_noise(&mut canvas, 0.09, rng);
        finalize(&mut canvas);
        canvas
    })
}

/// SVHN-like house numbers: digits over background gradients with partial
/// distractor digits at the edges and strong noise. Markedly harder than
/// `digits`, as in the paper's Fig. 7.
pub fn svhn_like(opts: &GenOptions) -> Dataset {
    let ranges = DeformRanges {
        rotation: 0.16,
        scale: (0.7, 1.05),
        shear: 0.22,
        shift: 3.0,
        thickness: (0.4, 0.72),
        ink: (0.5, 0.95),
    };
    split("house numbers (SVHN-like)", 10, opts, |label, rng| {
        let mut canvas = vec![0.0f32; IMG_PIXELS];
        draw_gradient(
            &mut canvas,
            rng.gen_range(0.1..0.4),
            (rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)),
        );
        // Distractor digits clipped at the left/right edges.
        for side in [-1.0f32, 1.0] {
            if rng.gen_bool(0.7) {
                let class = rng.gen_range(0..10);
                let d = Deform {
                    scale: rng.gen_range(0.6..0.9),
                    ink: rng.gen_range(0.3..0.6),
                    ..random_deform(&ranges, rng)
                };
                draw_glyph(
                    &mut canvas,
                    &glyph::bitmap(class),
                    &d,
                    (16.0 + side * rng.gen_range(13.0..18.0), 16.0),
                );
            }
        }
        let d = random_deform(&ranges, rng);
        draw_glyph(&mut canvas, &glyph::bitmap(label), &d, center());
        add_noise(&mut canvas, 0.14, rng);
        finalize(&mut canvas);
        canvas
    })
}

/// TICH-like handwritten characters: 36 classes (0–9, A–Z) with heavy
/// deformation — the hardest benchmark, matching the Tilburg character
/// set's role in the paper.
pub fn tich_like(opts: &GenOptions) -> Dataset {
    let ranges = DeformRanges {
        rotation: 0.34,
        scale: (0.62, 1.05),
        shear: 0.3,
        shift: 3.2,
        thickness: (0.38, 0.75),
        ink: (0.55, 1.0),
    };
    split("characters (TICH-like)", 36, opts, |label, rng| {
        let mut canvas = vec![0.0f32; IMG_PIXELS];
        let d = random_deform(&ranges, rng);
        draw_glyph(&mut canvas, &glyph::bitmap(label), &d, center());
        add_noise(&mut canvas, 0.1, rng);
        finalize(&mut canvas);
        canvas
    })
}

/// Looks a generator up by its short name
/// (`digits | faces | svhn | tich`).
pub fn by_name(name: &str, opts: &GenOptions) -> Option<Dataset> {
    match name {
        "digits" => Some(digits(opts)),
        "faces" => Some(faces(opts)),
        "svhn" => Some(svhn_like(opts)),
        "tich" => Some(tich_like(opts)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> GenOptions {
        GenOptions {
            train: 72,
            test: 36,
            seed: 1,
        }
    }

    #[test]
    fn all_generators_produce_valid_datasets() {
        for name in ["digits", "faces", "svhn", "tich"] {
            let ds = by_name(name, &quick()).unwrap();
            assert_eq!(ds.train_len(), 72, "{name}");
            assert_eq!(ds.test_len(), 36, "{name}");
        }
        assert!(by_name("imagenet", &quick()).is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = digits(&quick());
        let b = digits(&quick());
        assert_eq!(a.train_images, b.train_images);
        let c = digits(&GenOptions { seed: 2, ..quick() });
        assert_ne!(a.train_images, c.train_images);
    }

    #[test]
    fn classes_are_balanced() {
        let ds = tich_like(&quick());
        let mut counts = vec![0usize; ds.classes];
        for &l in &ds.train_labels {
            counts[l] += 1;
        }
        assert_eq!(counts.iter().max(), counts.iter().min());
    }

    #[test]
    fn same_class_samples_differ() {
        let ds = digits(&quick());
        let zeros: Vec<&Vec<f32>> = ds
            .train_images
            .iter()
            .zip(&ds.train_labels)
            .filter(|(_, &l)| l == 0)
            .map(|(img, _)| img)
            .collect();
        assert!(zeros.len() >= 2);
        assert_ne!(zeros[0], zeros[1], "deformation must vary per sample");
    }

    #[test]
    fn faces_have_more_central_mass_than_nonfaces() {
        let ds = faces(&GenOptions {
            train: 400,
            test: 2,
            seed: 3,
        });
        let central = |img: &[f32]| -> f32 {
            let mut s = 0.0;
            for y in 12..20 {
                for x in 12..20 {
                    s += img[y * IMG_SIDE + x];
                }
            }
            s
        };
        let (mut face, mut nonface, mut nf_count, mut f_count) = (0.0, 0.0, 0, 0);
        for (img, &l) in ds.train_images.iter().zip(&ds.train_labels) {
            if l == 1 {
                face += central(img);
                f_count += 1;
            } else {
                nonface += central(img);
                nf_count += 1;
            }
        }
        assert!(face / f_count as f32 > nonface / nf_count as f32);
    }
}
