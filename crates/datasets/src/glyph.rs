//! A 5×7 bitmap font for digits and capital letters — the stroke source
//! for the synthetic character datasets.

/// Number of columns in a glyph.
pub const GLYPH_W: usize = 5;
/// Number of rows in a glyph.
pub const GLYPH_H: usize = 7;

/// The 36 glyph classes: digits `0`–`9` then letters `A`–`Z`.
pub const CLASS_COUNT: usize = 36;

#[rustfmt::skip]
const FONT: [[&str; GLYPH_H]; CLASS_COUNT] = [
    // 0-9
    ["01110","10001","10011","10101","11001","10001","01110"],
    ["00100","01100","00100","00100","00100","00100","01110"],
    ["01110","10001","00001","00110","01000","10000","11111"],
    ["01110","10001","00001","00110","00001","10001","01110"],
    ["00010","00110","01010","10010","11111","00010","00010"],
    ["11111","10000","11110","00001","00001","10001","01110"],
    ["01110","10000","10000","11110","10001","10001","01110"],
    ["11111","00001","00010","00100","01000","01000","01000"],
    ["01110","10001","10001","01110","10001","10001","01110"],
    ["01110","10001","10001","01111","00001","00001","01110"],
    // A-Z
    ["01110","10001","10001","11111","10001","10001","10001"],
    ["11110","10001","10001","11110","10001","10001","11110"],
    ["01110","10001","10000","10000","10000","10001","01110"],
    ["11110","10001","10001","10001","10001","10001","11110"],
    ["11111","10000","10000","11110","10000","10000","11111"],
    ["11111","10000","10000","11110","10000","10000","10000"],
    ["01110","10001","10000","10111","10001","10001","01111"],
    ["10001","10001","10001","11111","10001","10001","10001"],
    ["01110","00100","00100","00100","00100","00100","01110"],
    ["00111","00010","00010","00010","00010","10010","01100"],
    ["10001","10010","10100","11000","10100","10010","10001"],
    ["10000","10000","10000","10000","10000","10000","11111"],
    ["10001","11011","10101","10101","10001","10001","10001"],
    ["10001","11001","10101","10011","10001","10001","10001"],
    ["01110","10001","10001","10001","10001","10001","01110"],
    ["11110","10001","10001","11110","10000","10000","10000"],
    ["01110","10001","10001","10001","10101","10010","01101"],
    ["11110","10001","10001","11110","10100","10010","10001"],
    ["01111","10000","10000","01110","00001","00001","11110"],
    ["11111","00100","00100","00100","00100","00100","00100"],
    ["10001","10001","10001","10001","10001","10001","01110"],
    ["10001","10001","10001","10001","10001","01010","00100"],
    ["10001","10001","10001","10101","10101","11011","10001"],
    ["10001","10001","01010","00100","01010","10001","10001"],
    ["10001","10001","01010","00100","00100","00100","00100"],
    ["11111","00001","00010","00100","01000","10000","11111"],
];

/// Returns the bitmap for class `class` (0–9 digits, 10–35 letters A–Z):
/// `bitmap(class)[row][col]` is `true` where the glyph has ink.
///
/// # Panics
///
/// Panics if `class >= 36`.
pub fn bitmap(class: usize) -> [[bool; GLYPH_W]; GLYPH_H] {
    assert!(class < CLASS_COUNT, "glyph class out of range");
    let mut out = [[false; GLYPH_W]; GLYPH_H];
    for (r, row) in FONT[class].iter().enumerate() {
        for (c, ch) in row.bytes().enumerate() {
            out[r][c] = ch == b'1';
        }
    }
    out
}

/// The display character of a glyph class.
pub fn class_char(class: usize) -> char {
    assert!(class < CLASS_COUNT, "glyph class out of range");
    if class < 10 {
        (b'0' + class as u8) as char
    } else {
        (b'A' + (class - 10) as u8) as char
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_glyph_is_well_formed() {
        for (class, font) in FONT.iter().enumerate().take(CLASS_COUNT) {
            for row in *font {
                assert_eq!(row.len(), GLYPH_W, "class {class}");
                assert!(row.bytes().all(|b| b == b'0' || b == b'1'));
            }
            let bm = bitmap(class);
            let ink: usize = bm.iter().flatten().filter(|&&b| b).count();
            assert!(ink >= 7, "class {class} ({}) too sparse", class_char(class));
        }
    }

    #[test]
    fn glyphs_are_pairwise_distinct() {
        for a in 0..CLASS_COUNT {
            for b in (a + 1)..CLASS_COUNT {
                assert_ne!(
                    bitmap(a),
                    bitmap(b),
                    "classes {} and {} share a bitmap",
                    class_char(a),
                    class_char(b)
                );
            }
        }
    }

    #[test]
    fn class_chars_cover_alphanumerics() {
        assert_eq!(class_char(0), '0');
        assert_eq!(class_char(9), '9');
        assert_eq!(class_char(10), 'A');
        assert_eq!(class_char(35), 'Z');
    }
}
