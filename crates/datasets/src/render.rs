//! Rasterization of glyphs onto 32×32 grayscale canvases with the
//! deformations (rotation, scale, shift, stroke thickness, noise) that give
//! each synthetic dataset its difficulty.

use rand::Rng;

use crate::glyph::{GLYPH_H, GLYPH_W};

/// Canvas side length; every benchmark uses 32×32 = 1024 inputs, which is
/// the input dimension implied by the paper's Table IV synapse counts.
pub const IMG_SIDE: usize = 32;
/// Pixels per image.
pub const IMG_PIXELS: usize = IMG_SIDE * IMG_SIDE;

/// Geometric + photometric deformation of one rendered sample.
#[derive(Clone, Debug)]
pub struct Deform {
    /// Rotation in radians.
    pub rotation: f32,
    /// Isotropic scale (1.0 fills most of the canvas).
    pub scale: f32,
    /// Horizontal shear factor.
    pub shear: f32,
    /// Translation in pixels.
    pub shift: (f32, f32),
    /// Stroke half-width in glyph cells (0.5 = nominal).
    pub thickness: f32,
    /// Ink intensity in `[0, 1]`.
    pub ink: f32,
}

impl Default for Deform {
    fn default() -> Self {
        Self {
            rotation: 0.0,
            scale: 1.0,
            shear: 0.0,
            shift: (0.0, 0.0),
            thickness: 0.55,
            ink: 1.0,
        }
    }
}

/// Ranges from which [`random_deform`] draws.
#[derive(Clone, Debug)]
pub struct DeformRanges {
    /// Max |rotation| in radians.
    pub rotation: f32,
    /// Scale range.
    pub scale: (f32, f32),
    /// Max |shear|.
    pub shear: f32,
    /// Max |shift| in pixels (each axis).
    pub shift: f32,
    /// Stroke half-width range.
    pub thickness: (f32, f32),
    /// Ink intensity range.
    pub ink: (f32, f32),
}

/// Samples a deformation uniformly from the ranges.
pub fn random_deform(ranges: &DeformRanges, rng: &mut impl Rng) -> Deform {
    Deform {
        rotation: rng.gen_range(-ranges.rotation..=ranges.rotation),
        scale: rng.gen_range(ranges.scale.0..=ranges.scale.1),
        shear: rng.gen_range(-ranges.shear..=ranges.shear),
        shift: (
            rng.gen_range(-ranges.shift..=ranges.shift),
            rng.gen_range(-ranges.shift..=ranges.shift),
        ),
        thickness: rng.gen_range(ranges.thickness.0..=ranges.thickness.1),
        ink: rng.gen_range(ranges.ink.0..=ranges.ink.1),
    }
}

/// Renders a glyph bitmap into `canvas` (additively, saturating at 1.0).
///
/// The glyph is centered, scaled so its 7-cell height spans ~80% of the
/// canvas at `scale = 1.0`, then rotated/sheared/shifted. Each output pixel
/// is supersampled 2×2; a subsample is inked when it lies within
/// `thickness` (in cell units) of a set cell's center region.
pub fn draw_glyph(
    canvas: &mut [f32],
    bitmap: &[[bool; GLYPH_W]; GLYPH_H],
    deform: &Deform,
    center: (f32, f32),
) {
    debug_assert_eq!(canvas.len(), IMG_PIXELS);
    let cell = 0.8 * IMG_SIDE as f32 / GLYPH_H as f32 * deform.scale;
    let (sin, cos) = deform.rotation.sin_cos();
    let (cx, cy) = (center.0 + deform.shift.0, center.1 + deform.shift.1);
    let gx0 = GLYPH_W as f32 / 2.0;
    let gy0 = GLYPH_H as f32 / 2.0;
    for py in 0..IMG_SIDE {
        for px in 0..IMG_SIDE {
            let mut hit = 0.0f32;
            for (sx, sy) in [(0.25f32, 0.25f32), (0.75, 0.25), (0.25, 0.75), (0.75, 0.75)] {
                let dx = px as f32 + sx - cx;
                let dy = py as f32 + sy - cy;
                // Inverse rotation, then inverse shear, then to cell space.
                let rx = cos * dx + sin * dy;
                let ry = -sin * dx + cos * dy;
                let rx = rx - deform.shear * ry;
                let u = rx / cell + gx0;
                let v = ry / cell + gy0;
                if u < -1.0 || v < -1.0 || u >= GLYPH_W as f32 + 1.0 || v >= GLYPH_H as f32 + 1.0 {
                    continue;
                }
                // Distance to the nearest set cell center (checking the
                // 3×3 neighborhood suffices for thickness <= 1).
                let iu = u.floor() as i32;
                let iv = v.floor() as i32;
                'cells: for nv in (iv - 1)..=(iv + 1) {
                    for nu in (iu - 1)..=(iu + 1) {
                        if nu < 0 || nv < 0 || nu >= GLYPH_W as i32 || nv >= GLYPH_H as i32 {
                            continue;
                        }
                        if !bitmap[nv as usize][nu as usize] {
                            continue;
                        }
                        let ddx = (u - (nu as f32 + 0.5)).abs();
                        let ddy = (v - (nv as f32 + 0.5)).abs();
                        if ddx.max(ddy) <= deform.thickness {
                            hit += 0.25;
                            break 'cells;
                        }
                    }
                }
            }
            if hit > 0.0 {
                let p = &mut canvas[py * IMG_SIDE + px];
                *p = (*p + hit * deform.ink).min(1.0);
            }
        }
    }
}

/// Fills a canvas with a linear gradient (background clutter for the
/// SVHN-like set).
pub fn draw_gradient(canvas: &mut [f32], level: f32, slope: (f32, f32)) {
    for py in 0..IMG_SIDE {
        for px in 0..IMG_SIDE {
            let v = level
                + slope.0 * (px as f32 / IMG_SIDE as f32 - 0.5)
                + slope.1 * (py as f32 / IMG_SIDE as f32 - 0.5);
            canvas[py * IMG_SIDE + px] = (canvas[py * IMG_SIDE + px] + v).clamp(0.0, 1.0);
        }
    }
}

/// Draws a filled ellipse (for the face generator), additively.
pub fn draw_ellipse(canvas: &mut [f32], center: (f32, f32), radii: (f32, f32), ink: f32) {
    for py in 0..IMG_SIDE {
        for px in 0..IMG_SIDE {
            let dx = (px as f32 + 0.5 - center.0) / radii.0;
            let dy = (py as f32 + 0.5 - center.1) / radii.1;
            if dx * dx + dy * dy <= 1.0 {
                let p = &mut canvas[py * IMG_SIDE + px];
                *p = (*p + ink).clamp(0.0, 1.0);
            }
        }
    }
}

/// Adds zero-mean Gaussian noise (Box–Muller) of standard deviation
/// `sigma`, clamping to `[0, 1]`.
pub fn add_noise(canvas: &mut [f32], sigma: f32, rng: &mut impl Rng) {
    let mut spare: Option<f32> = None;
    for p in canvas.iter_mut() {
        let n = match spare.take() {
            Some(v) => v,
            None => {
                let u1: f32 = rng.gen_range(1e-7..1.0f32);
                let u2: f32 = rng.gen_range(0.0..1.0f32);
                let r = (-2.0 * u1.ln()).sqrt();
                let (s, c) = (std::f32::consts::TAU * u2).sin_cos();
                spare = Some(r * s);
                r * c
            }
        };
        *p = (*p + sigma * n).clamp(0.0, 1.0);
    }
}

/// Clamps every pixel strictly below 1.0 so images quantize into the
/// unsigned `Q0.(bits-1)` activation format without saturating.
pub fn finalize(canvas: &mut [f32]) {
    for p in canvas.iter_mut() {
        *p = p.clamp(0.0, 0.996);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glyph;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn glyph_lands_centered_ink() {
        let mut canvas = vec![0.0f32; IMG_PIXELS];
        let bm = glyph::bitmap(8); // '8' has ink everywhere in the middle
        draw_glyph(
            &mut canvas,
            &bm,
            &Deform::default(),
            (IMG_SIDE as f32 / 2.0, IMG_SIDE as f32 / 2.0),
        );
        let total: f32 = canvas.iter().sum();
        assert!(total > 20.0, "glyph should ink many pixels, got {total}");
        // Corners stay blank.
        assert_eq!(canvas[0], 0.0);
        assert_eq!(canvas[IMG_PIXELS - 1], 0.0);
    }

    #[test]
    fn rotation_moves_ink() {
        let render = |rot: f32| {
            let mut canvas = vec![0.0f32; IMG_PIXELS];
            let bm = glyph::bitmap(1);
            let d = Deform {
                rotation: rot,
                ..Deform::default()
            };
            draw_glyph(&mut canvas, &bm, &d, (16.0, 16.0));
            canvas
        };
        assert_ne!(render(0.0), render(0.6));
    }

    #[test]
    fn noise_is_bounded_and_nonzero() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut canvas = vec![0.5f32; IMG_PIXELS];
        add_noise(&mut canvas, 0.1, &mut rng);
        assert!(canvas.iter().any(|&p| p != 0.5));
        assert!(canvas.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn finalize_keeps_pixels_below_one() {
        let mut canvas = vec![1.0f32; 4];
        canvas.extend_from_slice(&[0.3; 4]);
        // Pad to full size for the debug_assert-free helpers.
        canvas.resize(IMG_PIXELS, 0.0);
        finalize(&mut canvas);
        assert!(canvas.iter().all(|&p| p < 1.0));
    }

    #[test]
    fn ellipse_fills_interior_only() {
        let mut canvas = vec![0.0f32; IMG_PIXELS];
        draw_ellipse(&mut canvas, (16.0, 16.0), (6.0, 8.0), 0.5);
        assert!(canvas[16 * IMG_SIDE + 16] > 0.0);
        assert_eq!(canvas[0], 0.0);
    }
}
