//! Synthetic benchmark generators for the MAN reproduction.
//!
//! The paper evaluates on MNIST, YUV-Faces, SVHN and the Tilburg character
//! set (TICH) — datasets we substitute with procedural generators that
//! preserve what the experiments actually exercise: 32×32 grayscale inputs
//! (1024 input neurons, matching Table IV's synapse counts), the same
//! output arities (10 / 2 / 10 / 36 classes), and the same difficulty
//! ordering (digits < faces < SVHN-like < TICH-like). See DESIGN.md §2 for
//! the substitution rationale.
//!
//! # Example
//!
//! ```
//! use man_datasets::{generators, GenOptions};
//!
//! let ds = generators::digits(&GenOptions { train: 100, test: 20, seed: 7 });
//! assert_eq!(ds.classes, 10);
//! assert_eq!(ds.train_images[0].len(), 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod generators;
pub mod glyph;
pub mod render;

pub use dataset::{Dataset, GenOptions};
