//! **man-par** — the deterministic parallel execution layer.
//!
//! Everything above this crate (the fixed-point engine, the facade
//! sessions, the serving scheduler, the experiment binaries) parallelizes
//! through one primitive: [`run_chunked`], a chunked work queue drained
//! by a **persistent** [`WorkerPool`] of parked workers. The contract is
//! deliberately narrow so that callers can argue determinism *by
//! construction*:
//!
//! * work is split into contiguous index chunks and results are
//!   reassembled in item order — output never depends on scheduling;
//! * each worker owns a private mutable context (a session cache, an
//!   accumulator, …); nothing is shared mutably between workers;
//! * a panic inside one chunk never deadlocks or leaks threads: the
//!   remaining workers finish their current chunk, stop pulling new
//!   ones, and the panic resumes on the caller once every worker slot
//!   has been accounted for — mirroring the containment discipline of
//!   the serving scheduler's `dispatch`.
//!
//! The pool is std-only (`Mutex` + `Condvar`, no rayon, no global
//! executor crate). Worker threads are spawned **once** — by
//! [`WorkerPool::new`] or lazily by [`global_pool`] — and parked on a
//! condvar between jobs, so the serving hot path no longer pays the
//! ~tens-of-µs thread-spawn cost once per large layer. Borrowed engines
//! and input slices still flow straight into workers: a job blocks its
//! submitter until every worker slot has completed, which is what makes
//! the (single, encapsulated) lifetime erasure in [`WorkerPool::run_chunked`]
//! sound.
//!
//! This crate also hosts the [`Parallelism::Auto`] tuner: a small,
//! unit-tested decision table ([`plan_shards`]) that resolves row- vs
//! neuron-sharding and the worker count per batch from measured MACs per
//! row, batch size and serve queue pressure (see [`AutoContext`] /
//! [`AutoTuning`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// How much parallelism a caller wants.
///
/// The unit of "worker" is one OS thread. `Sequential` is the identity
/// configuration: code paths taking a `Parallelism` must produce
/// bit-identical results for every variant, differing only in wall-clock
/// time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker, no threads engaged — the reference path.
    #[default]
    Sequential,
    /// Exactly `n` workers (clamped to at least 1).
    Threads(usize),
    /// Let the tuner decide: the worker *budget* is one per available
    /// hardware thread ([`std::thread::available_parallelism`]), and
    /// call sites that know their workload (the facade session, the
    /// serve scheduler, the accuracy evaluators) resolve sharding mode
    /// and worker count per batch through [`plan_shards`].
    Auto,
}

impl Parallelism {
    /// The worker *budget* this configuration resolves to (always ≥ 1).
    /// For [`Parallelism::Auto`] this is the upper bound the tuner works
    /// under — the per-batch resolved count can be lower (see
    /// [`plan_shards`]).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => available_cores(),
        }
    }

    /// A short human-readable label (`"sequential"`, `"threads(4)"`,
    /// `"auto(8)"`) for logs and bench reports.
    pub fn label(self) -> String {
        match self {
            Parallelism::Sequential => "sequential".to_owned(),
            Parallelism::Threads(n) => format!("threads({})", n.max(1)),
            Parallelism::Auto => format!("auto({})", available_cores()),
        }
    }
}

/// The host's available hardware threads (≥ 1; 1 when detection fails).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Which MAC kernel a caller asks the fixed-point engine to run — the
/// second tuner axis next to [`Parallelism`]. Every kernel is
/// bit-identical by construction (the vectorized kernels evaluate the
/// same select/shift/add datapath over a structure-of-arrays repack of
/// the per-weight plans, and accumulate in exactly the sequential
/// fan-in order); the request only moves wall-clock time around.
///
/// This crate owns the *request* vocabulary so the tuner
/// ([`AutoTuning::kernel`]) and the serve scheduler can carry it; the
/// engine (`man-core`'s `kernel` module) owns detection and dispatch
/// and reports what actually ran (`scalar`/`swar`/`avx2`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Kernel {
    /// The per-weight reference loop — the bit-exact baseline every
    /// other kernel is proven against.
    Scalar,
    /// The portable structure-of-arrays SWAR kernel, with any
    /// `std::arch` specialization explicitly disabled — the fallback
    /// path CI pins on AVX2-less (or forced-AVX2-off) runs.
    Swar,
    /// The best vectorized kernel the host supports: the AVX2
    /// specialization when `is_x86_feature_detected!("avx2")` says so,
    /// the portable SWAR kernel otherwise.
    Vector,
    /// Let the engine decide (the default): the `MAN_KERNEL`
    /// environment variable when set (`scalar`/`swar`/`vector`), else
    /// [`Kernel::Vector`].
    #[default]
    Auto,
}

impl Kernel {
    /// A short label (`"scalar"`, `"swar"`, `"vector"`, `"auto"`) for
    /// logs and bench reports. This names the *request*; the resolved
    /// kernel label (`scalar`/`swar`/`avx2`) comes from the engine.
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            Kernel::Vector => "vector",
            Kernel::Auto => "auto",
        }
    }

    /// Parses a request label (as accepted in `MAN_KERNEL`).
    pub fn parse(s: &str) -> Option<Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(Kernel::Scalar),
            "swar" => Some(Kernel::Swar),
            "vector" => Some(Kernel::Vector),
            "auto" => Some(Kernel::Auto),
            _ => None,
        }
    }

    /// The `MAN_KERNEL` environment override, if set and well-formed.
    /// CI's `kernel-equivalence` job uses this to pin the whole test
    /// suite onto one kernel per run.
    pub fn from_env() -> Option<Kernel> {
        std::env::var("MAN_KERNEL").ok().and_then(|v| {
            let parsed = Kernel::parse(&v);
            if parsed.is_none() {
                eprintln!("warning: MAN_KERNEL={v} is not scalar/swar/vector/auto; ignored");
            }
            parsed
        })
    }
}

/// Which MAC *layout* a caller asks the fixed-point engine to run — the
/// third tuner axis next to [`Parallelism`] and [`Kernel`]. Row-major
/// (the PR 5 family) vectorizes across one neuron's fan-in; batch-major
/// flips the axis and evaluates one weight term against several batch
/// rows at once (the term byte loaded once, reused across lanes, over a
/// batch-transposed view of the bank rows). Both layouts accumulate
/// each row strictly sequentially in fan-in order, so every
/// `(plan, kernel, layout)` triple is bit-identical; the request only
/// moves wall-clock time around.
///
/// This crate owns the *request* vocabulary so the tuner
/// ([`AutoTuning::layout`]) and the serve scheduler can carry it; the
/// engine (`man-core`'s `kernel` module) owns resolution and reports
/// what actually ran (`row`/`batch`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Layout {
    /// Vectorize across one neuron's fan-in (the PR 5 kernels) — the
    /// layout every batch size supports.
    RowMajor,
    /// Vectorize across batch rows: one weight term against 4–8 rows
    /// per step. Degrades to row-major when the batch has fewer than
    /// two rows (there is no batch axis to vectorize).
    BatchMajor,
    /// Let the engine decide (the default): the `MAN_LAYOUT`
    /// environment variable when set (`row`/`batch`), else the tuner
    /// heuristic [`plan_layout`] driven by batch size and MACs/row.
    #[default]
    Auto,
}

impl Layout {
    /// A short label (`"row"`, `"batch"`, `"auto"`) for logs and bench
    /// reports. This names the *request*; the resolved layout label
    /// (`row`/`batch`) comes from the engine.
    pub fn label(self) -> &'static str {
        match self {
            Layout::RowMajor => "row",
            Layout::BatchMajor => "batch",
            Layout::Auto => "auto",
        }
    }

    /// Parses a request label (as accepted in `MAN_LAYOUT`).
    pub fn parse(s: &str) -> Option<Layout> {
        match s.trim().to_ascii_lowercase().as_str() {
            "row" => Some(Layout::RowMajor),
            "batch" => Some(Layout::BatchMajor),
            "auto" => Some(Layout::Auto),
            _ => None,
        }
    }

    /// The `MAN_LAYOUT` environment override, if set and well-formed.
    /// CI's `kernel-equivalence` job uses this to pin the whole test
    /// suite onto one layout per run; an explicit session request
    /// always beats the environment (only [`Layout::Auto`] consults it).
    pub fn from_env() -> Option<Layout> {
        std::env::var("MAN_LAYOUT").ok().and_then(|v| {
            let parsed = Layout::parse(&v);
            if parsed.is_none() {
                eprintln!("warning: MAN_LAYOUT={v} is not row/batch/auto; ignored");
            }
            parsed
        })
    }
}

/// Splits one worker budget across two nested parallel stages: the
/// outer stage fans `outer_items` tasks across the budget, and each
/// task gets `budget / outer_items` workers for its own inner
/// parallelism — so nesting never oversubscribes the machine with
/// `workers × workers` threads. Returns `(outer, inner)`; both resolve
/// to at least one worker, and results must be (and everywhere in this
/// workspace are) identical for every split.
pub fn split_budget(parallelism: Parallelism, outer_items: usize) -> (Parallelism, Parallelism) {
    let inner = (parallelism.workers() / outer_items.max(1)).max(1);
    (parallelism, Parallelism::Threads(inner))
}

/// A chunk size that gives each worker a few chunks to pull, so a slow
/// chunk does not leave the other workers idle (work stealing via the
/// shared queue), while keeping per-chunk overhead negligible.
pub fn default_chunk_size(items: usize, workers: usize) -> usize {
    (items / (workers.max(1) * 4)).max(1)
}

// ---------------------------------------------------------------------------
// The Auto tuner
// ---------------------------------------------------------------------------

/// Thresholds of the [`Parallelism::Auto`] decision table. Every field
/// is public so callers (tests, the serve `BatchConfig`, ablation
/// studies) can override individual entries; [`AutoTuning::default`] is
/// the production table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AutoTuning {
    /// Below this many MACs in the *whole* batch, parallel dispatch
    /// overhead (queue handoff, condvar wake) outweighs the work:
    /// stay sequential.
    pub min_total_macs: u64,
    /// A lone row (or a batch too small to row-shard) only
    /// neuron-shards its layers when one inference costs at least this
    /// many MACs — below it, per-layer prefill + handout costs more
    /// than it saves.
    pub neuron_shard_min_macs: u64,
    /// The smallest batch worth row-sharding.
    pub row_shard_min_batch: usize,
    /// Hard cap on resolved workers (`None` = the host core count).
    pub max_workers: Option<usize>,
    /// The MAC kernel axis: which datapath kernel the engine should run
    /// under this tuning (see [`Kernel`]). Orthogonal to the sharding
    /// decision — every `(plan, kernel)` pair is bit-identical.
    pub kernel: Kernel,
    /// The MAC layout axis: which traversal order the engine should run
    /// under this tuning (see [`Layout`]). Orthogonal to both other
    /// axes — every `(plan, kernel, layout)` triple is bit-identical.
    pub layout: Layout,
    /// The smallest batch worth flipping to the batch-major layout
    /// under [`Layout::Auto`] — below it the transpose setup outweighs
    /// the per-term reuse across lanes.
    pub batch_major_min_batch: usize,
    /// Batch-major only pays off when each row re-reads enough term
    /// bytes for the across-lane reuse to matter; under [`Layout::Auto`]
    /// a model cheaper than this many MACs per inference stays
    /// row-major.
    pub batch_major_min_macs_per_row: u64,
}

impl Default for AutoTuning {
    fn default() -> Self {
        Self {
            min_total_macs: 50_000,
            neuron_shard_min_macs: 16_384,
            row_shard_min_batch: 2,
            max_workers: None,
            kernel: Kernel::Auto,
            layout: Layout::Auto,
            batch_major_min_batch: 8,
            batch_major_min_macs_per_row: 4_096,
        }
    }
}

/// What the tuner knows about one batch when [`Parallelism::Auto`]
/// resolves it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AutoContext {
    /// Multiply-accumulates one inference of this model costs — recorded
    /// at compile time (`FixedNet::macs_per_layer` summed; carried by
    /// `CompiledModel`/`CostedModel`).
    pub macs_per_row: u64,
    /// Rows in this batch.
    pub batch: usize,
    /// Concurrent streams competing for the same cores (≥ 1). The serve
    /// scheduler derives this from its queue depth: a backlog deep
    /// enough to keep sibling workers busy means this batch should not
    /// grab every core for itself.
    pub streams: usize,
    /// The worker budget (usually [`available_cores`], or the session's
    /// configured slot count).
    pub cores: usize,
}

/// How a batch resolved: the sharding mode and worker count
/// [`plan_shards`] picked. Every variant is bit-identical to
/// `Sequential`; the plan only moves wall-clock time around.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShardPlan {
    /// Run on the caller thread — the reference path.
    Sequential,
    /// Shard batch rows across `workers` pool slots (each row's whole
    /// forward pass on one thread).
    Rows {
        /// Resolved worker count (≥ 2).
        workers: usize,
    },
    /// Shard each row's large layers across `workers` output-neuron
    /// ranges (rows run one after another).
    Neurons {
        /// Resolved worker count (≥ 2).
        workers: usize,
    },
}

impl ShardPlan {
    /// The resolved worker count (1 for `Sequential`).
    pub fn workers(self) -> usize {
        match self {
            ShardPlan::Sequential => 1,
            ShardPlan::Rows { workers } | ShardPlan::Neurons { workers } => workers,
        }
    }

    /// A short label (`"sequential"`, `"rows(4)"`, `"neurons(8)"`) for
    /// logs and bench reports.
    pub fn label(self) -> String {
        match self {
            ShardPlan::Sequential => "sequential".to_owned(),
            ShardPlan::Rows { workers } => format!("rows({workers})"),
            ShardPlan::Neurons { workers } => format!("neurons({workers})"),
        }
    }

    /// The full plan × kernel label (`"rows(4)+swar"`) — what a batch
    /// actually resolved to on both tuner axes. `kernel` is the
    /// *resolved* kernel label the engine reports.
    pub fn label_with_kernel(self, kernel: &str) -> String {
        format!("{}+{kernel}", self.label())
    }

    /// The full plan × kernel × layout label (`"rows(4)+swar+batch"`) —
    /// what a batch actually resolved to on all three tuner axes. Both
    /// `kernel` and `layout` are the *resolved* labels the engine
    /// reports (`scalar`/`swar`/`avx2` and `row`/`batch`).
    pub fn label_with_kernel_layout(self, kernel: &str, layout: &str) -> String {
        format!("{}+{kernel}+{layout}", self.label())
    }

    /// The allocation-free variant label (`"sequential"` / `"rows"` /
    /// `"neurons"`) — what tracing spans carry (worker count travels as
    /// the span's numeric argument), and what the telemetry exporter
    /// uses as the `plan` label.
    pub fn stage_label(self) -> &'static str {
        match self {
            ShardPlan::Sequential => "sequential",
            ShardPlan::Rows { .. } => "rows",
            ShardPlan::Neurons { .. } => "neurons",
        }
    }
}

/// The [`Parallelism::Auto`] decision table. Deterministic in its
/// inputs, unit-tested row by row, and overridable through
/// [`AutoTuning`]:
///
/// | # | condition                                             | plan |
/// |---|-------------------------------------------------------|------|
/// | 1 | worker budget (`cores / streams`, capped) is 1        | `Sequential` |
/// | 2 | `macs_per_row × batch < min_total_macs`               | `Sequential` |
/// | 3 | `batch ≥ row_shard_min_batch` and `2·batch ≥ budget`  | `Rows(min(budget, batch))` |
/// | 4 | `macs_per_row ≥ neuron_shard_min_macs`                | `Neurons(budget)` |
/// | 5 | `batch ≥ row_shard_min_batch`                         | `Rows(min(budget, batch))` |
/// | 6 | otherwise                                             | `Sequential` |
///
/// Row 3 prefers row sharding whenever there are enough rows to keep at
/// least half the budget busy — row sharding has no prefill phase and
/// perfect per-row locality. Row 4 catches the lone-large-inference
/// case (one expensive row, many idle cores). Row 5 is the small-rows
/// fallback: a few cheap rows still beat neuron-sharding's prefill.
pub fn plan_shards(ctx: &AutoContext, tuning: &AutoTuning) -> ShardPlan {
    let mut budget = (ctx.cores / ctx.streams.max(1)).max(1);
    if let Some(cap) = tuning.max_workers {
        budget = budget.min(cap.max(1));
    }
    if budget <= 1 || ctx.batch == 0 {
        return ShardPlan::Sequential;
    }
    let total_macs = ctx.macs_per_row.saturating_mul(ctx.batch as u64);
    if total_macs < tuning.min_total_macs {
        return ShardPlan::Sequential;
    }
    if ctx.batch >= tuning.row_shard_min_batch && 2 * ctx.batch >= budget {
        return ShardPlan::Rows {
            workers: budget.min(ctx.batch),
        };
    }
    if ctx.macs_per_row >= tuning.neuron_shard_min_macs {
        return ShardPlan::Neurons { workers: budget };
    }
    if ctx.batch >= tuning.row_shard_min_batch {
        return ShardPlan::Rows {
            workers: budget.min(ctx.batch),
        };
    }
    ShardPlan::Sequential
}

/// The [`Layout::Auto`] half of the decision table: whether a batch is
/// worth flipping to the batch-major layout. Deterministic in its
/// inputs and overridable through [`AutoTuning`]:
///
/// | # | condition                                         | layout |
/// |---|---------------------------------------------------|--------|
/// | 1 | `batch < batch_major_min_batch`                   | `RowMajor` |
/// | 2 | `macs_per_row < batch_major_min_macs_per_row`     | `RowMajor` |
/// | 3 | otherwise                                         | `BatchMajor` |
///
/// Row 1 keeps small batches on the row-major family (too few lanes to
/// amortize the bank transpose); row 2 keeps cheap models there (not
/// enough term-byte reuse per row for the flipped axis to matter).
/// Never returns [`Layout::Auto`]. The engine applies this *after* the
/// `MAN_LAYOUT` environment override and an explicit session request,
/// both of which beat the heuristic.
pub fn plan_layout(batch: usize, macs_per_row: u64, tuning: &AutoTuning) -> Layout {
    if batch >= tuning.batch_major_min_batch && macs_per_row >= tuning.batch_major_min_macs_per_row
    {
        Layout::BatchMajor
    } else {
        Layout::RowMajor
    }
}

// ---------------------------------------------------------------------------
// The persistent worker pool
// ---------------------------------------------------------------------------

/// A queued unit of work: one worker slot of one job, with every borrow
/// lifetime erased (see the safety argument in
/// [`WorkerPool::run_chunked`]). Tagged with the job id so a submitter
/// can steal its own unstarted slots back.
type ErasedSlot = Box<dyn FnOnce() + Send + 'static>;

/// Cumulative activity counters for every pool in the process — the
/// `man-obs` export plane's view of worker utilization. All counters
/// are monotone; utilization is `busy_ns / (busy_ns + park_ns)`.
///
/// Time accounting (`busy_ns`/`park_ns`, plus the `park`/`chunk`/
/// `steal` span stages) is gated on the runtime
/// [`man_obs::ObsLevel`] — at `Off` the pool only pays untimed relaxed
/// increments.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Times a worker parked on the condvar with nothing to do.
    pub parks: AtomicU64,
    /// Worker slots executed by pool worker threads.
    pub worker_slots: AtomicU64,
    /// Worker slots the submitter ran inline (its reserved slot).
    pub inline_slots: AtomicU64,
    /// Still-queued slots a submitter stole back from the pool.
    pub steals: AtomicU64,
    /// Chunks handed out and completed across all jobs.
    pub chunks: AtomicU64,
    /// Nanoseconds pool workers spent executing slots.
    pub busy_ns: AtomicU64,
    /// Nanoseconds pool workers spent parked waiting for work.
    pub park_ns: AtomicU64,
}

/// A plain copy of [`PoolStats`] at one instant.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolSnapshot {
    /// See [`PoolStats::parks`].
    pub parks: u64,
    /// See [`PoolStats::worker_slots`].
    pub worker_slots: u64,
    /// See [`PoolStats::inline_slots`].
    pub inline_slots: u64,
    /// See [`PoolStats::steals`].
    pub steals: u64,
    /// See [`PoolStats::chunks`].
    pub chunks: u64,
    /// See [`PoolStats::busy_ns`].
    pub busy_ns: u64,
    /// See [`PoolStats::park_ns`].
    pub park_ns: u64,
}

impl PoolStats {
    /// Reads every counter.
    ///
    /// ORDERING: independent monotone statistics counters, read only
    /// for reporting; no cross-counter consistency is promised.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            parks: self.parks.load(Ordering::Relaxed),
            worker_slots: self.worker_slots.load(Ordering::Relaxed),
            inline_slots: self.inline_slots.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            park_ns: self.park_ns.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide [`PoolStats`] instance (covers the global pool and
/// any private pools alike).
pub fn pool_stats() -> &'static PoolStats {
    static STATS: OnceLock<PoolStats> = OnceLock::new();
    STATS.get_or_init(PoolStats::default)
}

struct PoolQueue {
    tasks: VecDeque<(u64, ErasedSlot)>,
    /// Set once by [`WorkerPool::shutdown`]; workers drain the queue
    /// and then exit.
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Workers park here between jobs.
    work_ready: Condvar,
}

impl PoolShared {
    fn lock(&self) -> MutexGuard<'_, PoolQueue> {
        // A worker can only hold this lock around queue pops, which do
        // not panic; recover rather than poison-cascade regardless.
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Counts outstanding worker slots of one job; the submitter blocks on
/// it until every slot has run (which is what keeps the erased borrows
/// alive long enough — see [`WorkerPool::run_chunked`]).
struct JobLatch {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl JobLatch {
    fn new(slots: usize) -> Self {
        Self {
            remaining: Mutex::new(slots),
            all_done: Condvar::new(),
        }
    }

    fn complete_one(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *remaining > 0 {
            remaining = self
                .all_done
                .wait(remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// A long-lived pool of parked worker threads.
///
/// Threads are spawned once, at construction, and parked on a condvar
/// between jobs — [`WorkerPool::run_chunked`] hands them work without
/// spawning anything, which removes the per-call thread-spawn cost
/// (~tens of µs per worker) the old scoped pool paid on every
/// large-layer forward pass of the serving hot path.
///
/// # Lifecycle
///
/// * The submitting thread always **participates**: it runs one worker
///   slot inline and then steals back any of its own slots still queued,
///   so a job completes even on a zero-thread (or already shut down)
///   pool, and a nested `run_chunked` from inside a pool worker can
///   never deadlock — every slot is either running somewhere or
///   stealable by its submitter.
/// * [`WorkerPool::shutdown`] (also run by `Drop`) is an idempotent
///   drain-then-join: the queue is closed, workers finish every
///   already-queued slot (abandoning one would deadlock its submitter),
///   then exit and are joined. After shutdown the pool still *works* —
///   jobs simply run entirely on their submitting thread.
///
/// Most code should use the process-wide [`global_pool`] (which the
/// free-function [`run_chunked`] / [`parallel_map`] route through) so
/// facade sessions, the serve scheduler, training evaluations and the
/// bench binaries all share one set of workers; private pools exist for
/// lifecycle tests and isolation experiments.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

/// Monotonic job ids, process-wide (the tag steal-back filters on).
static NEXT_JOB: AtomicU64 = AtomicU64::new(0);

impl WorkerPool {
    /// Spawns a pool of `threads` parked workers (0 is allowed: every
    /// job then runs inline on its submitter, which is also the natural
    /// configuration for a 1-core host).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("man-par/worker-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawning a man-par pool worker")
            })
            .collect();
        Self {
            shared,
            handles: Mutex::new(handles),
            threads,
        }
    }

    /// The number of worker threads the pool was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Idempotent drain-then-join shutdown: closes the queue, lets the
    /// workers finish every already-queued slot, joins them. Called by
    /// `Drop`; safe to call any number of times. A pool that has been
    /// shut down still completes jobs — inline on the submitter.
    pub fn shutdown(&self) {
        {
            let mut queue = self.shared.lock();
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<_> = {
            let mut handles = self
                .handles
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            handles.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    fn submit(&self, tasks: Vec<(u64, ErasedSlot)>) {
        if tasks.is_empty() {
            return;
        }
        let woken = tasks.len();
        {
            let mut queue = self.shared.lock();
            queue.tasks.extend(tasks);
        }
        // Wake one parked worker per slot; extras fall back asleep.
        for _ in 0..woken {
            self.shared.work_ready.notify_one();
        }
    }

    /// Removes one still-queued slot of `job`, if any — the submitter's
    /// steal-back path.
    fn steal(&self, job: u64) -> Option<ErasedSlot> {
        let mut queue = self.shared.lock();
        let pos = queue.tasks.iter().position(|(id, _)| *id == job)?;
        queue.tasks.remove(pos).map(|(_, slot)| slot)
    }

    /// Runs `work` over the index range `0..items`, split into
    /// contiguous chunks of `chunk_size`, on one worker slot per element
    /// of `contexts` — the pool-method form of the crate-level
    /// [`run_chunked`] (same contract, same panics, same bit-exact
    /// output assembly).
    pub fn run_chunked<C, R, F>(
        &self,
        contexts: &mut [C],
        items: usize,
        chunk_size: usize,
        work: F,
    ) -> Vec<R>
    where
        C: Send,
        R: Send,
        F: Fn(&mut C, Range<usize>) -> Vec<R> + Sync,
    {
        assert!(
            !contexts.is_empty(),
            "run_chunked needs at least one worker context"
        );
        assert!(chunk_size > 0, "chunk size must be positive");
        let chunks = items.div_ceil(chunk_size);

        if contexts.len() == 1 || chunks <= 1 {
            // Inline fast path: the reference sequential loop.
            return drain_sequential(&mut contexts[0], items, chunks, chunk_size, &work);
        }

        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let slots = contexts.len();
        let mut outcomes: Vec<WorkerOutcome<R>> = (0..slots).map(|_| (Vec::new(), None)).collect();
        // ORDERING: job ids only need uniqueness, which fetch_add gives
        // at any ordering; nothing synchronizes through the counter.
        let job = NEXT_JOB.fetch_add(1, Ordering::Relaxed);
        let latch = Arc::new(JobLatch::new(slots));

        {
            let work = &work;
            let next = &next;
            let abort = &abort;
            // One closure per worker slot. Each owns disjoint `&mut`s
            // (its context, its outcome cell) plus shared `&`s (the
            // work function, the chunk counter, the abort flag) and an
            // owned Arc on the latch.
            let mut pending: Vec<(u64, ErasedSlot)> = contexts
                .iter_mut()
                .zip(outcomes.iter_mut())
                .map(|(ctx, out)| {
                    let latch = Arc::clone(&latch);
                    let slot: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        // One span per slot drain (not per chunk — the
                        // handout loop is the hot path); the span's arg
                        // is the number of chunks this slot completed.
                        // DETERMINISM: observability timing only.
                        let drain_from = if man_obs::counters_enabled() {
                            man_obs::now_ns().max(1)
                        } else {
                            0
                        };
                        // Nothing may unwind out of a slot: an escaped
                        // panic would kill a pool thread and strand the
                        // submitter on the latch. `drain_chunks` contains
                        // per-chunk panics itself; this outer catch is the
                        // belt for anything outside that loop.
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            drain_chunks(ctx, items, chunks, chunk_size, work, next, abort)
                        }));
                        if let Ok((done, _)) = &outcome {
                            let stats = pool_stats();
                            // ORDERING: monotone statistics counter.
                            stats.chunks.fetch_add(done.len() as u64, Ordering::Relaxed);
                            if drain_from > 0 {
                                man_obs::record(
                                    man_obs::Stage::Chunk,
                                    0,
                                    drain_from,
                                    man_obs::now_ns().saturating_sub(drain_from),
                                    "",
                                    done.len() as u64,
                                );
                            }
                        }
                        *out = match outcome {
                            Ok(o) => o,
                            Err(payload) => {
                                // ORDERING: best-effort abort hint; the
                                // latch's mutex provides the real
                                // happens-before for the outcome itself.
                                abort.store(true, Ordering::Relaxed);
                                (Vec::new(), Some((usize::MAX, payload)))
                            }
                        };
                        // Last touch of any borrow: after this the slot
                        // only drops plain references (no-op) and its
                        // owned latch Arc.
                        latch.complete_one();
                    });
                    (job, erase_slot(slot))
                })
                .collect();

            // The submitter keeps one slot for itself (guaranteed
            // progress even on a busy/zero-thread pool) and queues the
            // rest for the parked workers.
            let inline = pending.pop();
            self.submit(pending);
            if let Some((_, slot)) = inline {
                // ORDERING: monotone statistics counter.
                pool_stats().inline_slots.fetch_add(1, Ordering::Relaxed);
                slot();
            }
            // Steal back any of this job's slots the pool has not
            // started yet, then wait for the in-flight ones. Every slot
            // is thereby either run here or run by a pool worker — the
            // latch cannot be left hanging.
            while let Some(slot) = self.steal(job) {
                // ORDERING: monotone statistics counter.
                pool_stats().steals.fetch_add(1, Ordering::Relaxed);
                man_obs::record_event(man_obs::Stage::Steal, 0, man_obs::now_ns(), 0, "", job);
                slot();
            }
            latch.wait();
        }

        assemble(outcomes, items)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Erases the borrow lifetimes of one worker slot so it can sit in the
/// persistent pool's queue.
///
/// # Safety argument
///
/// This is the single `unsafe` expression in the workspace, and the
/// only thing it does is extend a closure's lifetime parameter; the
/// pointee, layout and vtable are untouched (`Box<dyn FnOnce + Send>`
/// with two different lifetime bounds is the same fat pointer).
/// Soundness rests on three invariants local to
/// [`WorkerPool::run_chunked`]:
///
/// 1. **The submitter outlives the slot.** `run_chunked` blocks on a
///    [`JobLatch`] that counts every slot of the job and is only
///    released by the slot's final statement, *after* its last use of
///    any borrow. The borrows all live in `run_chunked`'s frame (or its
///    caller's), which cannot unwind past `latch.wait()`.
/// 2. **Every slot runs exactly once.** A slot is either executed
///    inline by the submitter, stolen back from the queue by the
///    submitter, executed by a pool worker, or — during shutdown —
///    drained by an exiting worker. The queue never drops a slot on the
///    floor (dropping one would strand its submitter on the latch, so
///    shutdown drains instead of discarding).
/// 3. **Nothing escapes the slot.** The closure's captures are disjoint
///    `&mut`s, shared `&`s of `Sync` values, and an owned latch `Arc`;
///    after the latch is signalled the remaining drop glue touches only
///    that `Arc`.
#[allow(unsafe_code)]
fn erase_slot(slot: Box<dyn FnOnce() + Send + '_>) -> ErasedSlot {
    // SAFETY: see above — the submitter blocks until the slot has run,
    // so every erased borrow strictly outlives every use.
    unsafe {
        std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Box<dyn FnOnce() + Send + 'static>>(
            slot,
        )
    }
}

/// ORDERING: every `PoolStats` update below is a monotone statistics
/// counter read only by the export plane; `Relaxed` suffices (the
/// queue mutex orders the work itself).
fn worker_main(shared: &PoolShared) {
    let stats = pool_stats();
    loop {
        // Accumulated park time for this wait (0 when the obs plane is
        // off, or when work was already queued).
        let mut park_from = 0u64;
        let mut parked_ns = 0u64;
        let slot = {
            let mut queue = shared.lock();
            loop {
                if let Some((_, slot)) = queue.tasks.pop_front() {
                    break slot;
                }
                if queue.shutdown {
                    return;
                }
                stats.parks.fetch_add(1, Ordering::Relaxed);
                // DETERMINISM: the monotonic clock feeds only the
                // observability plane (park-time accounting); it never
                // influences which work runs or what it computes.
                let start = if man_obs::counters_enabled() {
                    man_obs::now_ns().max(1)
                } else {
                    0
                };
                if park_from == 0 {
                    park_from = start;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if start > 0 {
                    parked_ns += man_obs::now_ns().saturating_sub(start);
                }
            }
        };
        // Record outside the queue lock: the span collector may flush
        // into the flight-recorder ring (its own lock) when full.
        if parked_ns > 0 {
            stats.park_ns.fetch_add(parked_ns, Ordering::Relaxed);
            man_obs::record(man_obs::Stage::Park, 0, park_from, parked_ns, "", 0);
        }
        // DETERMINISM: busy-time accounting only (see above).
        let busy_from = if man_obs::counters_enabled() {
            man_obs::now_ns()
        } else {
            0
        };
        // Slots never unwind (outer catch_unwind inside the slot).
        slot();
        stats.worker_slots.fetch_add(1, Ordering::Relaxed);
        if busy_from > 0 {
            let busy = man_obs::now_ns().saturating_sub(busy_from);
            stats.busy_ns.fetch_add(busy, Ordering::Relaxed);
        }
    }
}

/// The chunks one worker slot completed plus, possibly, the chunk index
/// at which it panicked (with the payload). `usize::MAX` marks a panic
/// outside the per-chunk containment (e.g. the result-length assert).
type ChunkResults<R> = Vec<(usize, Vec<R>)>;
type WorkerOutcome<R> = (
    ChunkResults<R>,
    Option<(usize, Box<dyn std::any::Any + Send>)>,
);

fn range_of(c: usize, chunk_size: usize, items: usize) -> Range<usize> {
    (c * chunk_size)..((c + 1) * chunk_size).min(items)
}

fn drain_sequential<C, R, F>(
    ctx: &mut C,
    items: usize,
    chunks: usize,
    chunk_size: usize,
    work: &F,
) -> Vec<R>
where
    F: Fn(&mut C, Range<usize>) -> Vec<R>,
{
    let mut out = Vec::with_capacity(items);
    for c in 0..chunks {
        let range = range_of(c, chunk_size, items);
        let produced = work(ctx, range.clone());
        assert_eq!(
            produced.len(),
            range.len(),
            "work must yield one result per item"
        );
        out.extend(produced);
    }
    out
}

/// One worker slot's loop: pull the next unclaimed chunk off the shared
/// atomic counter, run it under per-chunk panic containment, repeat
/// until the chunks run out or a co-worker aborts.
fn drain_chunks<C, R, F>(
    ctx: &mut C,
    items: usize,
    chunks: usize,
    chunk_size: usize,
    work: &F,
    next: &AtomicUsize,
    abort: &AtomicBool,
) -> WorkerOutcome<R>
where
    F: Fn(&mut C, Range<usize>) -> Vec<R>,
{
    let mut done: ChunkResults<R> = Vec::new();
    loop {
        // ORDERING: the abort flag is a shutdown hint — observing it late
        // only costs extra (correct, discarded) work; the handout cursor
        // needs uniqueness only. All result visibility is ordered by the
        // job latch's mutex, not by these atomics.
        if abort.load(Ordering::Relaxed) {
            return (done, None);
        }
        // ORDERING: handout cursor — uniqueness only (see above).
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= chunks {
            return (done, None);
        }
        let range = range_of(c, chunk_size, items);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let produced = work(ctx, range.clone());
            assert_eq!(
                produced.len(),
                range.len(),
                "work must yield one result per item"
            );
            produced
        }));
        match attempt {
            Ok(produced) => done.push((c, produced)),
            Err(payload) => {
                // ORDERING: abort hint only; panic payload delivery is
                // ordered by the latch mutex (see above).
                abort.store(true, Ordering::Relaxed);
                return (done, Some((c, payload)));
            }
        }
    }
}

/// Reassembles per-slot outcomes in item order, resuming the earliest
/// panic (by chunk index) if any slot contained one.
fn assemble<R>(outcomes: Vec<WorkerOutcome<R>>, items: usize) -> Vec<R> {
    let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
    let mut completed: ChunkResults<R> = Vec::new();
    for (done, panic) in outcomes {
        completed.extend(done);
        if let Some(p) = panic {
            panics.push(p);
        }
    }
    if !panics.is_empty() {
        panics.sort_by_key(|(c, _)| *c);
        resume_unwind(panics.remove(0).1);
    }
    completed.sort_by_key(|(c, _)| *c);
    let mut out = Vec::with_capacity(items);
    for (_, produced) in completed {
        out.extend(produced);
    }
    assert_eq!(
        out.len(),
        items,
        "every chunk must have been processed exactly once"
    );
    out
}

/// The process-wide shared pool: one parked worker per available
/// hardware thread, spawned lazily on first parallel call and kept for
/// the process lifetime. Facade sessions, the serve scheduler, the
/// training pipeline's parallel evaluations and the bench binaries all
/// draw from this one pool (submitters additionally run one slot
/// inline, so an N-core host keeps N+1 runnable threads at peak — the
/// submitter's slot drains the queue rather than idling).
pub fn global_pool() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(available_cores()))
}

/// Runs `work` over the index range `0..items`, split into contiguous
/// chunks of `chunk_size`, on one worker slot per element of `contexts`,
/// drawn from the [`global_pool`].
///
/// Each worker slot repeatedly pulls the next unclaimed chunk off a
/// shared atomic queue and maps it through `work(&mut context, range)`;
/// the per-chunk result vectors are reassembled in item order, so the
/// output is exactly what the single-context sequential loop would
/// produce (provided `work` is a pure function of `(range, context-local
/// memoization)` — which is what every caller in this workspace
/// guarantees).
///
/// With a single context (or a single chunk) no pool interaction happens
/// and `work` runs inline on the caller.
///
/// # Panics
///
/// Panics if `contexts` is empty, if `chunk_size` is zero, or if `work`
/// returns a vector whose length differs from its range. If `work`
/// itself panics, the panic is *contained*: remaining workers finish
/// their current chunk and stop, every worker slot is accounted for,
/// and then the first panic (by chunk order) resumes on the caller.
pub fn run_chunked<C, R, F>(contexts: &mut [C], items: usize, chunk_size: usize, work: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(&mut C, Range<usize>) -> Vec<R> + Sync,
{
    global_pool().run_chunked(contexts, items, chunk_size, work)
}

/// Maps `0..items` through `f` with `parallelism`, stateless-worker
/// convenience over [`run_chunked`]. Output index `i` holds `f(i)`.
pub fn parallel_map<R, F>(parallelism: Parallelism, items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = parallelism.workers().min(items.max(1));
    let mut contexts = vec![(); workers];
    let chunk = default_chunk_size(items, workers);
    run_chunked(&mut contexts, items, chunk, |(), range| {
        range.map(&f).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallelism_resolves_to_at_least_one_worker() {
        assert_eq!(Parallelism::Sequential.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::Threads(3).label(), "threads(3)");
    }

    #[test]
    fn chunked_map_preserves_item_order() {
        for workers in [1usize, 2, 3, 8] {
            for items in [0usize, 1, 7, 64, 97] {
                let mut contexts = vec![0u64; workers];
                let out = run_chunked(&mut contexts, items, 5, |ctx, range| {
                    *ctx += range.len() as u64;
                    range.map(|i| i * i).collect()
                });
                let expected: Vec<usize> = (0..items).map(|i| i * i).collect();
                assert_eq!(out, expected, "workers={workers} items={items}");
                // Every item was processed exactly once, across whichever
                // workers pulled chunks.
                assert_eq!(contexts.iter().sum::<u64>(), items as u64);
            }
        }
    }

    #[test]
    fn worker_contexts_persist_across_chunks() {
        // One worker, many chunks: the context accumulates.
        let mut contexts = vec![Vec::<usize>::new()];
        let out = run_chunked(&mut contexts, 10, 3, |seen, range| {
            seen.extend(range.clone());
            range.map(|i| i + 1).collect()
        });
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        assert_eq!(contexts[0], (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_one_chunk_is_contained_and_resumed() {
        let attempted = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut contexts = vec![(); 4];
            run_chunked(&mut contexts, 32, 1, |(), range| {
                attempted.fetch_add(1, Ordering::Relaxed);
                if range.start == 7 {
                    panic!("chunk 7 exploded");
                }
                range.collect::<Vec<_>>()
            })
        }));
        // Containment: the panic surfaced on the caller (no deadlock, no
        // stranded worker — every slot was accounted for by the latch),
        // with the original payload intact. How many chunks the *other*
        // workers completed before seeing the abort flag is
        // scheduling-dependent, so it is deliberately not asserted.
        let payload = result.expect_err("the worker panic must surface to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert_eq!(msg, "chunk 7 exploded");
        assert!(
            attempted.load(Ordering::Relaxed) >= 8,
            "chunk 7 was reached"
        );

        // The pool survives: the very next call works normally.
        let mut contexts = vec![(); 4];
        let ok = run_chunked(&mut contexts, 8, 2, |(), range| range.collect::<Vec<_>>());
        assert_eq!(ok, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_matches_sequential_map() {
        let seq: Vec<u64> = (0..100).map(|i| (i as u64) * 3 + 1).collect();
        for p in [
            Parallelism::Sequential,
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            assert_eq!(parallel_map(p, 100, |i| (i as u64) * 3 + 1), seq);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(parallel_map::<u64, _>(Parallelism::Threads(4), 0, |_| unreachable!()).is_empty());
    }

    #[test]
    fn private_pool_runs_jobs_and_shuts_down_idempotently() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let mut contexts = vec![0u64; 4];
        let out = pool.run_chunked(&mut contexts, 50, 3, |ctx, range| {
            *ctx += 1;
            range.map(|i| i * 2).collect()
        });
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
        pool.shutdown();
        pool.shutdown(); // idempotent

        // A shut-down pool still completes jobs (inline on the caller).
        let mut contexts = vec![0u64; 4];
        let out = pool.run_chunked(&mut contexts, 10, 2, |_, range| range.collect());
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        // Only the caller's slot plus its steal-backs could have run.
        assert_eq!(contexts.iter().sum::<u64>(), 0);
    }

    #[test]
    fn zero_thread_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let mut contexts = vec![(); 4];
        let out = pool.run_chunked(&mut contexts, 20, 2, |(), range| {
            range.map(|i| i + 100).collect()
        });
        assert_eq!(out, (100..120).collect::<Vec<_>>());
    }

    #[test]
    fn nested_run_chunked_on_the_global_pool_does_not_deadlock() {
        // Outer fan-out over the pool; each outer slot runs an inner
        // run_chunked on the SAME pool. Steal-back guarantees progress.
        let out = parallel_map(Parallelism::Threads(4), 8, |i| {
            parallel_map(Parallelism::Threads(3), 16, move |j| (i * 16 + j) as u64)
                .iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..8)
            .map(|i| (0..16).map(|j| (i * 16 + j) as u64).sum())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn pool_reuse_across_many_jobs_is_stable() {
        let pool = WorkerPool::new(2);
        for round in 0..64u64 {
            let mut contexts = vec![0u64; 3];
            let out = pool.run_chunked(&mut contexts, 31, 4, move |ctx, range| {
                *ctx += range.len() as u64;
                range.map(|i| i as u64 + round).collect()
            });
            assert_eq!(out, (0..31).map(|i| i + round).collect::<Vec<_>>());
            assert_eq!(contexts.iter().sum::<u64>(), 31);
        }
    }

    // -- Auto tuner decision table -------------------------------------

    fn ctx(macs_per_row: u64, batch: usize, streams: usize, cores: usize) -> AutoContext {
        AutoContext {
            macs_per_row,
            batch,
            streams,
            cores,
        }
    }

    #[test]
    fn tuner_stays_sequential_on_one_core_or_tiny_work() {
        let t = AutoTuning::default();
        // Row 1: no budget.
        assert_eq!(
            plan_shards(&ctx(1_000_000, 64, 1, 1), &t),
            ShardPlan::Sequential
        );
        // Row 1 via streams: 8 cores but 8 competing streams.
        assert_eq!(
            plan_shards(&ctx(1_000_000, 64, 8, 8), &t),
            ShardPlan::Sequential
        );
        // Row 2: total work below the floor.
        assert_eq!(plan_shards(&ctx(100, 64, 1, 8), &t), ShardPlan::Sequential);
        // Empty batch.
        assert_eq!(
            plan_shards(&ctx(1_000_000, 0, 1, 8), &t),
            ShardPlan::Sequential
        );
    }

    #[test]
    fn tuner_row_shards_plentiful_batches() {
        let t = AutoTuning::default();
        // Row 3: 64 rows, 8 cores -> rows across all 8.
        assert_eq!(
            plan_shards(&ctx(100_000, 64, 1, 8), &t),
            ShardPlan::Rows { workers: 8 }
        );
        // Workers never exceed rows.
        assert_eq!(
            plan_shards(&ctx(100_000, 5, 1, 8), &t),
            ShardPlan::Rows { workers: 5 }
        );
    }

    #[test]
    fn tuner_neuron_shards_lone_large_inferences() {
        let t = AutoTuning::default();
        // Row 4: one expensive row, 8 idle cores.
        assert_eq!(
            plan_shards(&ctx(400_000, 1, 1, 8), &t),
            ShardPlan::Neurons { workers: 8 }
        );
        // Two expensive rows against 8 cores: still neurons (2*2 < 8).
        assert_eq!(
            plan_shards(&ctx(400_000, 2, 1, 8), &t),
            ShardPlan::Neurons { workers: 8 }
        );
        // Same two rows against 4 cores: rows win (2*2 >= 4).
        assert_eq!(
            plan_shards(&ctx(400_000, 2, 1, 4), &t),
            ShardPlan::Rows { workers: 2 }
        );
    }

    #[test]
    fn tuner_small_rows_fall_back_to_row_sharding() {
        let t = AutoTuning::default();
        // Row 5: 4 cheap rows (below the neuron floor per row, above the
        // total floor), budget 16: 2*4 < 16 so row 3 misses, neuron floor
        // misses, rows still beat sequential.
        assert_eq!(
            plan_shards(&ctx(15_000, 4, 1, 16), &t),
            ShardPlan::Rows { workers: 4 }
        );
        // Row 6: a lone cheap-ish row parallelizes nowhere.
        assert_eq!(
            plan_shards(
                &ctx(60_000, 1, 1, 8),
                &AutoTuning {
                    neuron_shard_min_macs: 100_000,
                    ..AutoTuning::default()
                }
            ),
            ShardPlan::Sequential
        );
    }

    #[test]
    fn tuner_respects_stream_pressure_and_caps() {
        let t = AutoTuning::default();
        // 2 competing streams halve the budget.
        assert_eq!(
            plan_shards(&ctx(100_000, 64, 2, 8), &t),
            ShardPlan::Rows { workers: 4 }
        );
        // Explicit worker cap.
        let capped = AutoTuning {
            max_workers: Some(2),
            ..AutoTuning::default()
        };
        assert_eq!(
            plan_shards(&ctx(100_000, 64, 1, 8), &capped),
            ShardPlan::Rows { workers: 2 }
        );
        assert_eq!(ShardPlan::Rows { workers: 2 }.workers(), 2);
        assert_eq!(ShardPlan::Neurons { workers: 8 }.label(), "neurons(8)");
        assert_eq!(ShardPlan::Sequential.workers(), 1);
    }

    #[test]
    fn tuner_layout_axis_flips_on_batch_and_row_cost() {
        let t = AutoTuning::default();
        // Row 1: batch below the lane floor stays row-major, however
        // expensive the rows are.
        assert_eq!(plan_layout(1, 1_000_000, &t), Layout::RowMajor);
        assert_eq!(plan_layout(7, 1_000_000, &t), Layout::RowMajor);
        // Row 2: cheap rows stay row-major, however wide the batch is.
        assert_eq!(plan_layout(64, 1_000, &t), Layout::RowMajor);
        // Row 3: wide batch x expensive rows flips the axis.
        assert_eq!(plan_layout(8, 4_096, &t), Layout::BatchMajor);
        assert_eq!(plan_layout(64, 100_000, &t), Layout::BatchMajor);
        // Thresholds are overridable like every other table entry.
        let eager = AutoTuning {
            batch_major_min_batch: 2,
            batch_major_min_macs_per_row: 0,
            ..AutoTuning::default()
        };
        assert_eq!(plan_layout(2, 1, &eager), Layout::BatchMajor);
        let never = AutoTuning {
            batch_major_min_batch: usize::MAX,
            ..AutoTuning::default()
        };
        assert_eq!(plan_layout(1 << 20, u64::MAX, &never), Layout::RowMajor);
    }

    #[test]
    fn layout_labels_and_parsing_roundtrip() {
        for l in [Layout::RowMajor, Layout::BatchMajor, Layout::Auto] {
            assert_eq!(Layout::parse(l.label()), Some(l));
        }
        assert_eq!(Layout::parse(" BATCH "), Some(Layout::BatchMajor));
        assert_eq!(Layout::parse("column"), None);
        assert_eq!(Layout::default(), Layout::Auto);
        assert_eq!(AutoTuning::default().layout, Layout::Auto);
        assert_eq!(
            ShardPlan::Rows { workers: 4 }.label_with_kernel_layout("swar", "batch"),
            "rows(4)+swar+batch"
        );
        assert_eq!(
            ShardPlan::Sequential.label_with_kernel_layout("avx2", "row"),
            "sequential+avx2+row"
        );
    }

    #[test]
    fn kernel_labels_and_parsing_roundtrip() {
        for k in [Kernel::Scalar, Kernel::Swar, Kernel::Vector, Kernel::Auto] {
            assert_eq!(Kernel::parse(k.label()), Some(k));
        }
        assert_eq!(Kernel::parse(" VECTOR "), Some(Kernel::Vector));
        assert_eq!(Kernel::parse("mmx"), None);
        assert_eq!(Kernel::default(), Kernel::Auto);
        assert_eq!(AutoTuning::default().kernel, Kernel::Auto);
        assert_eq!(
            ShardPlan::Rows { workers: 4 }.label_with_kernel("swar"),
            "rows(4)+swar"
        );
        assert_eq!(
            ShardPlan::Sequential.label_with_kernel("avx2"),
            "sequential+avx2"
        );
    }
}
