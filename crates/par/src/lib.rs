//! **man-par** — the deterministic parallel execution layer.
//!
//! Everything above this crate (the fixed-point engine, the facade
//! sessions, the serving scheduler, the experiment binaries) parallelizes
//! through one primitive: [`run_chunked`], a scoped worker pool over a
//! chunked work queue. The contract is deliberately narrow so that
//! callers can argue determinism *by construction*:
//!
//! * work is split into contiguous index chunks and results are
//!   reassembled in item order — output never depends on scheduling;
//! * each worker owns a private mutable context (a session cache, an
//!   accumulator, …); nothing is shared mutably between workers;
//! * a panic inside one chunk never deadlocks or leaks threads: the
//!   remaining workers finish their current chunk, stop pulling new
//!   ones, and the panic resumes on the caller once every worker has
//!   been joined — mirroring the containment discipline of the serving
//!   scheduler's `dispatch`.
//!
//! The pool is std-only (`std::thread::scope`): no rayon, no global
//! state, no `'static` bounds, so borrowed engines and input slices flow
//! straight into workers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How much parallelism a caller wants.
///
/// The unit of "worker" is one OS thread. `Sequential` is the identity
/// configuration: code paths taking a `Parallelism` must produce
/// bit-identical results for every variant, differing only in wall-clock
/// time.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker, no threads spawned — the reference path.
    #[default]
    Sequential,
    /// Exactly `n` workers (clamped to at least 1).
    Threads(usize),
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Parallelism {
    /// The number of workers this configuration resolves to (always ≥ 1).
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => available_cores(),
        }
    }

    /// A short human-readable label (`"sequential"`, `"threads(4)"`,
    /// `"auto(8)"`) for logs and bench reports.
    pub fn label(self) -> String {
        match self {
            Parallelism::Sequential => "sequential".to_owned(),
            Parallelism::Threads(n) => format!("threads({})", n.max(1)),
            Parallelism::Auto => format!("auto({})", available_cores()),
        }
    }
}

/// The host's available hardware threads (≥ 1; 1 when detection fails).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits one worker budget across two nested parallel stages: the
/// outer stage fans `outer_items` tasks across the budget, and each
/// task gets `budget / outer_items` workers for its own inner
/// parallelism — so nesting never oversubscribes the machine with
/// `workers × workers` threads. Returns `(outer, inner)`; both resolve
/// to at least one worker, and results must be (and everywhere in this
/// workspace are) identical for every split.
pub fn split_budget(parallelism: Parallelism, outer_items: usize) -> (Parallelism, Parallelism) {
    let inner = (parallelism.workers() / outer_items.max(1)).max(1);
    (parallelism, Parallelism::Threads(inner))
}

/// A chunk size that gives each worker a few chunks to pull, so a slow
/// chunk does not leave the other workers idle (work stealing via the
/// shared queue), while keeping per-chunk overhead negligible.
pub fn default_chunk_size(items: usize, workers: usize) -> usize {
    (items / (workers.max(1) * 4)).max(1)
}

/// Runs `work` over the index range `0..items`, split into contiguous
/// chunks of `chunk_size`, on one worker per element of `contexts`.
///
/// Each worker repeatedly pulls the next unclaimed chunk off a shared
/// atomic queue and maps it through `work(&mut context, range)`; the
/// per-chunk result vectors are reassembled in item order, so the output
/// is exactly what the single-context sequential loop would produce
/// (provided `work` is a pure function of `(range, context-local
/// memoization)` — which is what every caller in this workspace
/// guarantees).
///
/// With a single context (or a single chunk) no thread is spawned and
/// `work` runs inline on the caller.
///
/// # Panics
///
/// Panics if `contexts` is empty, if `chunk_size` is zero, or if `work`
/// returns a vector whose length differs from its range. If `work`
/// itself panics, the panic is *contained*: remaining workers finish
/// their current chunk and stop, every thread is joined, and then the
/// first panic (by chunk order) resumes on the caller.
pub fn run_chunked<C, R, F>(contexts: &mut [C], items: usize, chunk_size: usize, work: F) -> Vec<R>
where
    C: Send,
    R: Send,
    F: Fn(&mut C, Range<usize>) -> Vec<R> + Sync,
{
    assert!(
        !contexts.is_empty(),
        "run_chunked needs at least one worker context"
    );
    assert!(chunk_size > 0, "chunk size must be positive");
    let chunks = items.div_ceil(chunk_size);
    let range_of = |c: usize| (c * chunk_size)..((c + 1) * chunk_size).min(items);

    if contexts.len() == 1 || chunks <= 1 {
        // Inline fast path: the reference sequential loop.
        let ctx = &mut contexts[0];
        let mut out = Vec::with_capacity(items);
        for c in 0..chunks {
            let range = range_of(c);
            let produced = work(ctx, range.clone());
            assert_eq!(
                produced.len(),
                range.len(),
                "work must yield one result per item"
            );
            out.extend(produced);
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let work = &work;
    let next = &next;
    let abort = &abort;

    // Each worker returns the chunks it completed plus, possibly, the
    // chunk index at which it panicked (with the payload).
    type ChunkResults<R> = Vec<(usize, Vec<R>)>;
    type WorkerOutcome<R> = (
        ChunkResults<R>,
        Option<(usize, Box<dyn std::any::Any + Send>)>,
    );

    let outcomes: Vec<WorkerOutcome<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = contexts
            .iter_mut()
            .map(|ctx| {
                scope.spawn(move || {
                    let mut done: ChunkResults<R> = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            return (done, None);
                        }
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            return (done, None);
                        }
                        let range = range_of(c);
                        match catch_unwind(AssertUnwindSafe(|| work(ctx, range.clone()))) {
                            Ok(produced) => {
                                assert_eq!(
                                    produced.len(),
                                    range.len(),
                                    "work must yield one result per item"
                                );
                                done.push((c, produced));
                            }
                            Err(payload) => {
                                abort.store(true, Ordering::Relaxed);
                                return (done, Some((c, payload)));
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("man-par worker panicked outside containment")
            })
            .collect()
    });

    // Surface the earliest panic deterministically (by chunk index).
    let mut panics: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
    let mut completed: ChunkResults<R> = Vec::new();
    for (done, panic) in outcomes {
        completed.extend(done);
        if let Some(p) = panic {
            panics.push(p);
        }
    }
    if !panics.is_empty() {
        panics.sort_by_key(|(c, _)| *c);
        resume_unwind(panics.remove(0).1);
    }

    completed.sort_by_key(|(c, _)| *c);
    let mut out = Vec::with_capacity(items);
    for (_, produced) in completed {
        out.extend(produced);
    }
    assert_eq!(
        out.len(),
        items,
        "every chunk must have been processed exactly once"
    );
    out
}

/// Maps `0..items` through `f` with `parallelism`, stateless-worker
/// convenience over [`run_chunked`]. Output index `i` holds `f(i)`.
pub fn parallel_map<R, F>(parallelism: Parallelism, items: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = parallelism.workers().min(items.max(1));
    let mut contexts = vec![(); workers];
    let chunk = default_chunk_size(items, workers);
    run_chunked(&mut contexts, items, chunk, |(), range| {
        range.map(&f).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallelism_resolves_to_at_least_one_worker() {
        assert_eq!(Parallelism::Sequential.workers(), 1);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert_eq!(Parallelism::Threads(6).workers(), 6);
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::Threads(3).label(), "threads(3)");
    }

    #[test]
    fn chunked_map_preserves_item_order() {
        for workers in [1usize, 2, 3, 8] {
            for items in [0usize, 1, 7, 64, 97] {
                let mut contexts = vec![0u64; workers];
                let out = run_chunked(&mut contexts, items, 5, |ctx, range| {
                    *ctx += range.len() as u64;
                    range.map(|i| i * i).collect()
                });
                let expected: Vec<usize> = (0..items).map(|i| i * i).collect();
                assert_eq!(out, expected, "workers={workers} items={items}");
                // Every item was processed exactly once, across whichever
                // workers pulled chunks.
                assert_eq!(contexts.iter().sum::<u64>(), items as u64);
            }
        }
    }

    #[test]
    fn worker_contexts_persist_across_chunks() {
        // One worker, many chunks: the context accumulates.
        let mut contexts = vec![Vec::<usize>::new()];
        let out = run_chunked(&mut contexts, 10, 3, |seen, range| {
            seen.extend(range.clone());
            range.map(|i| i + 1).collect()
        });
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        assert_eq!(contexts[0], (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_one_chunk_is_contained_and_resumed() {
        let attempted = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut contexts = vec![(); 4];
            run_chunked(&mut contexts, 32, 1, |(), range| {
                attempted.fetch_add(1, Ordering::Relaxed);
                if range.start == 7 {
                    panic!("chunk 7 exploded");
                }
                range.collect::<Vec<_>>()
            })
        }));
        // Containment: the panic surfaced on the caller (no deadlock, no
        // leaked thread — `thread::scope` joined everything), with the
        // original payload intact. How many chunks the *other* workers
        // completed before seeing the abort flag is scheduling-dependent,
        // so it is deliberately not asserted.
        let payload = result.expect_err("the worker panic must surface to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert_eq!(msg, "chunk 7 exploded");
        assert!(
            attempted.load(Ordering::Relaxed) >= 8,
            "chunk 7 was reached"
        );

        // The pool is stateless: the very next call works normally.
        let mut contexts = vec![(); 4];
        let ok = run_chunked(&mut contexts, 8, 2, |(), range| range.collect::<Vec<_>>());
        assert_eq!(ok, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_matches_sequential_map() {
        let seq: Vec<u64> = (0..100).map(|i| (i as u64) * 3 + 1).collect();
        for p in [
            Parallelism::Sequential,
            Parallelism::Threads(4),
            Parallelism::Auto,
        ] {
            assert_eq!(parallel_map(p, 100, |i| (i as u64) * 3 + 1), seq);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(parallel_map::<u64, _>(Parallelism::Threads(4), 0, |_| unreachable!()).is_empty());
    }
}
