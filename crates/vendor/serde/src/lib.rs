//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace vendors
//! a small serde lookalike built around an explicit JSON-like [`Value`]
//! model: [`Serialize`] renders a type into a [`Value`], [`Deserialize`]
//! rebuilds it, and the companion `serde_json` crate converts values to
//! and from JSON text. The derive macros (re-exported from
//! `serde_derive`) cover the shapes this workspace uses: structs with
//! named fields, unit enums, and enums with tuple variants — using
//! serde's externally-tagged enum representation.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization value (JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key/value map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object value.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short human-readable description of the value's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y" convenience constructor.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Helpers used by generated code and `serde_json`.
pub mod de {
    use super::{DeError, Deserialize, Value};

    /// Looks up `name` in an object's entries and deserializes it.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the field is missing or mistyped.
    pub fn field<T: Deserialize>(entries: &[(String, Value)], name: &str) -> Result<T, DeError> {
        match entries.iter().find(|(k, _)| k == name) {
            Some((_, v)) => {
                T::from_value(v).map_err(|e| DeError::custom(format!("in field `{name}`: {e}")))
            }
            None => Err(DeError::custom(format!("missing field `{name}`"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match *v {
                    Value::I64(n) => n as i128,
                    Value::U64(n) => n as i128,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.3e18 => f as i128,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!(
                        "{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u128 = match *v {
                    Value::I64(n) if n >= 0 => n as u128,
                    Value::U64(n) => n as u128,
                    Value::F64(f) if f.fract() == 0.0 && (0.0..1.8e19).contains(&f) => f as u128,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!(
                        "{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N} elements, got {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", "tuple")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
