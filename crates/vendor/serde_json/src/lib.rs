//! Offline vendored stand-in for `serde_json`: JSON text rendering and
//! parsing over the vendored `serde` crate's [`serde::Value`] model.
//!
//! Floats are written with Rust's shortest round-trip `Display`
//! representation, so an `f32`/`f64` survives `to_string` → `from_str`
//! bit-identically (the property the model-artifact tests rely on).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Renders a value as compact JSON.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Renders a value as indented JSON.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some("  "), 0)?;
    Ok(out)
}

/// Parses JSON text into a deserializable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite float"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep the number recognizably floating-point so integral
            // floats round-trip as floats.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let cases = [
            Value::Null,
            Value::Bool(true),
            Value::I64(-42),
            Value::U64(u64::MAX),
            Value::F64(0.1),
            Value::F64(-3.0),
            Value::Str("a \"quoted\"\nline\t\\".into()),
        ];
        for v in cases {
            let s = to_string(&v).unwrap();
            let back: Value = from_str(&s).unwrap();
            match (&v, &back) {
                (Value::F64(a), Value::F64(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Value::F64(a), Value::I64(b)) => assert_eq!(*a, *b as f64),
                _ => assert_eq!(v, back),
            }
        }
    }

    #[test]
    fn f32_bit_identical_roundtrip() {
        for raw in [0x3e99_999au32, 0x3f80_0001, 0x0000_0001, 0xbf7f_ffff] {
            let x = f32::from_bits(raw);
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s}");
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("net".into())),
            (
                "layers".into(),
                Value::Array(vec![Value::I64(1), Value::F64(2.5), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
            ("obj".into(), Value::Object(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error() {
        for s in ["{", "[1,", "\"abc", "tru", "01x", "{\"a\" 1}", "1 2"] {
            assert!(from_str::<Value>(s).is_err(), "{s} should fail");
        }
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "é😀");
    }
}
