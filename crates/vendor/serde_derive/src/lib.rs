//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` crate's value model without `syn`/`quote` (neither is
//! available offline): the item is parsed by walking the raw
//! [`proc_macro::TokenStream`].
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields;
//! * enums whose variants are unit or tuple variants.
//!
//! Generics, tuple structs, struct variants and `#[serde(...)]`
//! attributes are rejected with a compile-time panic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum ItemKind {
    /// Named fields.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// Number of tuple fields; 0 = unit variant.
    arity: usize,
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Skips attributes (`#[...]`) starting at `i`, returning the next index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn ident_at(tokens: &[TokenTree], i: usize, what: &str) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected {what}, found {other:?}"),
    }
}

/// Parses the named fields of a brace-delimited body, returning the field
/// names in declaration order.
fn parse_named_fields(body: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i, "field name");
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Skip the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a parenthesized tuple-variant payload.
fn tuple_arity(body: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0
                // A trailing comma does not add a field.
                && idx + 1 < tokens.len() =>
            {
                arity += 1;
            }
            _ => {}
        }
    }
    arity
}

fn parse_variants(body: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i, "variant name");
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = tuple_arity(&g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde derive stand-in: struct variants are not supported (variant `{name}`)")
                }
                _ => {}
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde derive: expected `,` after variant `{name}`, found {other:?}"),
        }
        variants.push(Variant { name, arity });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let keyword = ident_at(&tokens, i, "`struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i, "type name");
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive stand-in: generic type `{name}` is not supported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!(
            "serde derive stand-in: `{name}` must have a brace-delimited body \
             (tuple/unit structs are not supported)"
        ),
    };
    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_named_fields(&body)),
        "enum" => ItemKind::Enum(parse_variants(&body)),
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };
    Item { name, kind }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match v.arity {
                        0 => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        1 => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        n => {
                            let binders: Vec<String> = (0..n).map(|k| format!("__f{k}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__entries, \"{f}\")?,"))
                .collect();
            format!(
                "let __entries = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.arity > 0)
                .map(|v| {
                    let vname = &v.name;
                    if v.arity == 1 {
                        format!(
                            "\"{vname}\" => ::std::result::Result::Ok(\
                             {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )
                    } else {
                        let n = v.arity;
                        let items: Vec<String> = (0..n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                            .collect();
                        format!(
                            "\"{vname}\" => {{\n\
                             let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array\", \"{name}::{vname}\"))?;\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\
                             ::std::format!(\"expected {n} elements for {name}::{vname}, \
                             got {{}}\", __items.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }}",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {payload}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"externally tagged variant\", \"{name}\")),\n\
                 }}",
                unit = unit_arms.join("\n"),
                payload = payload_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated Serialize impl must parse")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated Deserialize impl must parse")
}
