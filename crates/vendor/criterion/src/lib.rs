//! Offline vendored stand-in for `criterion`.
//!
//! Provides the macro and builder surface this workspace's benches use —
//! [`Criterion`], [`BenchmarkId`], `benchmark_group` / `bench_function` /
//! `bench_with_input`, `criterion_group!`, `criterion_main!` — backed by
//! a plain wall-clock sampler (no statistics, plots or comparisons).
//! Each benchmark reports the mean and minimum time per iteration.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target duration of one measurement sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function(&mut self, name: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        bencher.print(&name.to_string());
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.0);
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            report: None,
        };
        f(&mut bencher, input);
        bencher.print(&label);
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            report: None,
        };
        f(&mut bencher);
        bencher.print(&label);
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        Self(param.to_string())
    }

    /// An id with a function name and parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self(format!("{name}/{param}"))
    }
}

/// Measures a closure.
pub struct Bencher {
    sample_size: usize,
    report: Option<(f64, f64)>,
}

impl Bencher {
    /// Times `f`, first calibrating how many iterations fill one sample
    /// budget, then taking `sample_size` timed samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Calibrate: how many iterations fit the per-sample budget?
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET || iters >= 1 << 20 {
                break;
            }
            let factor =
                (SAMPLE_BUDGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(2.0, 128.0);
            iters = ((iters as f64) * factor).ceil() as u64;
        }
        let mut total = 0.0f64;
        let mut best = f64::INFINITY;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let per_iter = start.elapsed().as_secs_f64() / iters as f64;
            total += per_iter;
            best = best.min(per_iter);
        }
        self.report = Some((total / self.sample_size as f64, best));
    }

    fn print(&self, label: &str) {
        match self.report {
            Some((mean, best)) => println!(
                "bench {label:<50} mean {:>12}  min {:>12}",
                format_time(mean),
                format_time(best)
            ),
            None => println!("bench {label:<50} (no measurement taken)"),
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
