//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's
//! property-test suites use: the [`proptest!`] macro, `prop_assert*`
//! macros, [`Strategy`] over ranges / [`Just`] / [`any`] /
//! `prop_oneof!` / `collection::vec`, and [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! inputs via the assertion message and the (deterministic) case number.
//! Each test function derives its RNG seed from its own name, so runs are
//! reproducible.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Run-count configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Deterministic per-test RNG (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of value produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty strategy range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as f64, self.end as f64);
                assert!(lo < hi, "empty strategy range");
                let v = lo + (hi - lo) * rng.unit_f64();
                (if v >= hi { lo } else { v }) as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Types with a default "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy combinators used by the `prop_oneof!` macro.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Uniformly picks one of several strategies per case.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union from boxed options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length range for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("property failed at case {}: {}", __case, __msg)
                        }
                    }
                }
            }
        )+
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), __a, __b
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {
        $crate::strategy::Union::new(::std::vec![
            $( ::std::boxed::Box::new($s) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>> ),+
        ])
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::` module path used for `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u32> {
        prop_oneof![Just(0u32), Just(2u32), Just(4u32)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in -2i64..=2, f in -1.5f32..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.5..1.5).contains(&f), "f = {f}");
        }

        #[test]
        fn oneof_and_vec_work(e in small_even(), v in prop::collection::vec(0u8..4, 1..6)) {
            prop_assert!(e.is_multiple_of(2));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert_eq!(v.iter().filter(|&&b| b >= 4).count(), 0);
        }

        #[test]
        fn assume_rejects_without_failing(n in any::<u32>()) {
            prop_assume!(n.is_multiple_of(2));
            prop_assert!(n.is_multiple_of(2));
        }
    }
}
