//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the `rand` 0.8 API its crates actually use:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over (inclusive) ranges of the common numeric
//! types, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the same
//! stream as upstream `SmallRng`, but every consumer in this workspace
//! only relies on *determinism for a fixed seed*, which this provides.

#![forbid(unsafe_code)]

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as upstream rand does for xoshiro-family generators.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform range sampling.
pub mod distributions {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types uniformly samplable from a bounded range. Mirrors upstream
    /// rand's design: the *blanket* `SampleRange` impls below are what
    /// lets an unsuffixed literal like `0.3..0.6` unify with the f32 the
    /// call site needs instead of defaulting to f64.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Samples uniformly from `[lo, hi)` (`inclusive == false`) or
        /// `[lo, hi]` (`inclusive == true`).
        fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
    }

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one sample.
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "empty range");
            T::sample_uniform(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "empty range");
            T::sample_uniform(lo, hi, true, rng)
        }
    }

    fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random bits in [0, 1).
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    fn unit_f64_inclusive<R: RngCore>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) / ((1u64 << 53) - 1) as f64
    }

    macro_rules! impl_float_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let (flo, fhi) = (lo as f64, hi as f64);
                    if inclusive {
                        (flo + (fhi - flo) * unit_f64_inclusive(rng)) as $t
                    } else {
                        // Rounding — in the f64 arithmetic or in the
                        // narrowing cast — can land exactly on `hi`;
                        // check in the target type to keep the
                        // half-open contract.
                        let v = (flo + (fhi - flo) * unit_f64(rng)) as $t;
                        if v >= hi { lo } else { v }
                    }
                }
            }
        )*};
    }
    impl_float_uniform!(f32, f64);

    macro_rules! impl_int_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore>(
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let (wlo, whi) = (lo as i128, hi as i128);
                    let span = (whi - wlo) as u128 + u128::from(inclusive);
                    (wlo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.25f32..0.25);
            assert!((-0.25..0.25).contains(&f));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let j = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&j));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
